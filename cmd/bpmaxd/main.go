// Command bpmaxd serves BPMax folds over HTTP/JSON: the network front door
// of the serving spine (pipeline → admission → cache → engine/pool) that
// the library's Session wires together.
//
// Endpoints:
//
//	POST /v1/fold    {"seq1","seq2","timeout_ms","structure"}   one interaction fold
//	POST /v1/batch   {"items":[{"name","seq1","seq2"}]}         a screening batch
//	POST /v1/scan    {"seq1","seq2","w1","w2","timeout_ms"}     windowed (banded) scan
//	GET  /v1/cache                                              cache introspection
//	GET  /healthz                                               200 serving / 503 draining
//	GET  /metrics                                               MetricsSnapshot JSON
//	GET  /debug/pprof/                                          net/http/pprof
//
// Wire contract: per-request deadlines (timeout_ms, capped by -max-timeout)
// and client disconnects map onto the fold's context; a full admission
// queue is 429 with Retry-After derived from live queue depth; a draining
// server is 503. SIGTERM/SIGINT trigger the graceful drain: stop accepting,
// finish every in-flight request, release the session, exit 0. See
// docs/SERVING_HTTP.md.
//
// Usage:
//
//	bpmaxd -addr :8642 -cache 256MB -admit 8 -admit-queue 64
//	bpmaxd -addr 127.0.0.1:0 -addr-file /tmp/bpmaxd.addr   # random port, written to a file
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"github.com/bpmax-go/bpmax"
	"github.com/bpmax-go/bpmax/internal/cliflags"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bpmaxd:", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled (signal) and the drain completes.
func run(ctx context.Context, args []string, logw *os.File) error {
	fs := flag.NewFlagSet("bpmaxd", flag.ContinueOnError)
	serving := cliflags.NewServing()
	serving.Register(fs)
	addr := fs.String("addr", ":8642", "listen address (host:port; port 0 picks a free port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
	reqTimeout := fs.Duration("request-timeout", 0, "default per-request deadline when the body has no timeout_ms (0 = none)")
	maxTimeout := fs.Duration("max-timeout", 0, "cap any requested timeout_ms at this duration (0 = uncapped)")
	maxBody := fs.Int64("max-body", 8<<20, "largest accepted request body in bytes")
	scanWindow := fs.Int("scan-window", 64, "window span used when a scan request omits w1/w2")
	batchWorkers := fs.Int("batch-workers", 0, "worker budget per /v1/batch request (0 = all CPUs)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long the SIGTERM drain waits for in-flight requests before giving up")
	foldMetrics := fs.Bool("fold-metrics", false,
		"instrument every fold (per-phase timings in /metrics); instrumented folds bypass the result cache, so leave off when -cache should serve repeats")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	comps, err := serving.Build()
	if err != nil {
		return err
	}
	defer comps.Close()
	options := comps.Options
	var mtr *bpmax.Metrics
	if *foldMetrics {
		mtr = bpmax.NewMetrics()
		options = append(options, bpmax.WithMetrics(mtr))
	}
	session, err := bpmax.NewSession(options...)
	if err != nil {
		return err
	}
	defer session.Close()

	srv := newServer(session, comps, mtr, serverConfig{
		DefaultTimeout: *reqTimeout,
		MaxTimeout:     *maxTimeout,
		MaxBody:        *maxBody,
		ScanWindow:     *scanWindow,
		BatchWorkers:   *batchWorkers,
	})
	publishExpvar(srv.snapshot)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "bpmaxd: listening on %s\n", ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}

	httpSrv := &http.Server{Handler: srv.mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: flip health to 503, let every in-flight request
	// finish (http.Server.Shutdown waits for active handlers), then drain
	// and release the session. Requests arriving during the drain are
	// refused by the closed listener or answered 503 by the closed session.
	fmt.Fprintln(logw, "bpmaxd: draining")
	srv.draining.Store(true)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %d requests still in flight after %v: %w",
			srv.inFlight.Load(), *drainTimeout, err)
	}
	if err := session.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("session drain: %w", err)
	}
	st := srv.serverStats()
	fmt.Fprintf(logw, "bpmaxd: drained: %d requests (%d ok, %d shed, %d unavailable, %d in flight)\n",
		st.Requests, st.OK, st.Shed, st.Unavailable, st.InFlight)
	if st.InFlight != 0 {
		return fmt.Errorf("drain dropped %d in-flight requests", st.InFlight)
	}
	return nil
}

// expvarOnce guards the process-wide expvar registration: run may be
// invoked more than once (tests), Publish panics on duplicates.
var (
	expvarOnce sync.Once
	expvarSnap func() bpmax.MetricsSnapshot
	expvarMu   sync.Mutex
)

// publishExpvar exposes the observability snapshot at /debug/vars under
// the "bpmax" key, next to the standard memstats. Re-registration (tests)
// swaps the snapshot source instead of panicking.
func publishExpvar(snapshot func() bpmax.MetricsSnapshot) {
	expvarMu.Lock()
	expvarSnap = snapshot
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("bpmax", expvar.Func(func() any {
			expvarMu.Lock()
			f := expvarSnap
			expvarMu.Unlock()
			if f == nil {
				return nil
			}
			return f()
		}))
	})
}
