// Command bpmaxd serves BPMax folds over HTTP/JSON: the network front door
// of the serving spine (pipeline → admission → cache → engine/pool) that
// the library's Session wires together.
//
// Endpoints:
//
//	POST /v1/fold    {"seq1","seq2","timeout_ms","structure"}   one interaction fold
//	POST /v1/batch   {"items":[{"name","seq1","seq2"}]}         a screening batch
//	POST /v1/scan    {"seq1","seq2","w1","w2","timeout_ms"}     windowed (banded) scan
//	GET  /v1/cache                                              cache introspection
//	GET  /healthz                                               200 serving / 503 draining
//	GET  /metrics                                               MetricsSnapshot JSON
//	GET  /metrics/prom                                          Prometheus text exposition
//	GET  /debug/requests                                        recent + slowest request traces
//	GET  /debug/pprof/                                          net/http/pprof
//
// Observability: every /v1 request carries an X-Request-ID (honored from
// the client or minted), a Server-Timing header with the per-stage latency
// breakdown, and a structured access-log record (-log-format text|json);
// the last -trace-ring requests and the slowest -trace-slowest are kept
// for /debug/requests and dumped as Chrome trace-event JSON to -trace-out
// on drain. See docs/OBSERVABILITY.md.
//
// Wire contract: per-request deadlines (timeout_ms, capped by -max-timeout)
// and client disconnects map onto the fold's context; a full admission
// queue is 429 with Retry-After derived from live queue depth; a draining
// server is 503. SIGTERM/SIGINT trigger the graceful drain: stop accepting,
// finish every in-flight request, release the session, exit 0. See
// docs/SERVING_HTTP.md.
//
// Usage:
//
//	bpmaxd -addr :8642 -cache 256MB -admit 8 -admit-queue 64
//	bpmaxd -addr 127.0.0.1:0 -addr-file /tmp/bpmaxd.addr   # random port, written to a file
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"github.com/bpmax-go/bpmax"
	"github.com/bpmax-go/bpmax/internal/cliflags"
	"github.com/bpmax-go/bpmax/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bpmaxd:", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled (signal) and the drain completes.
func run(ctx context.Context, args []string, logw *os.File) error {
	fs := flag.NewFlagSet("bpmaxd", flag.ContinueOnError)
	serving := cliflags.NewServing()
	serving.Register(fs)
	addr := fs.String("addr", ":8642", "listen address (host:port; port 0 picks a free port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
	reqTimeout := fs.Duration("request-timeout", 0, "default per-request deadline when the body has no timeout_ms (0 = none)")
	maxTimeout := fs.Duration("max-timeout", 0, "cap any requested timeout_ms at this duration (0 = uncapped)")
	maxBody := fs.Int64("max-body", 8<<20, "largest accepted request body in bytes")
	scanWindow := fs.Int("scan-window", 64, "window span used when a scan request omits w1/w2")
	batchWorkers := fs.Int("batch-workers", 0, "worker budget per /v1/batch request (0 = all CPUs)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long the SIGTERM drain waits for in-flight requests before giving up")
	foldMetrics := fs.Bool("fold-metrics", false,
		"instrument every fold (per-phase timings in /metrics); instrumented folds bypass the result cache, so leave off when -cache should serve repeats")
	traceRequests := fs.Bool("trace-requests", true, "per-request tracing: X-Request-ID, Server-Timing stage breakdowns, /debug/requests ring")
	traceRing := fs.Int("trace-ring", 128, "how many recent request traces /debug/requests retains")
	traceSlowest := fs.Int("trace-slowest", 32, "how many slowest-since-startup request traces /debug/requests retains")
	traceOut := fs.String("trace-out", "", "write the retained request traces as Chrome trace-event JSON to this file on drain")
	logFormat := fs.String("log-format", "text", "structured log encoding: text or json")
	accessLog := fs.Bool("access-log", true, "log one structured record per /v1 request")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(logw, nil)
	case "json":
		handler = slog.NewJSONHandler(logw, nil)
	default:
		return fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat)
	}
	logger := slog.New(handler)

	comps, err := serving.Build()
	if err != nil {
		return err
	}
	defer comps.Close()
	options := comps.Options
	var mtr *bpmax.Metrics
	if *foldMetrics {
		mtr = bpmax.NewMetrics()
		options = append(options, bpmax.WithMetrics(mtr))
	}
	session, err := bpmax.NewSession(options...)
	if err != nil {
		return err
	}
	defer session.Close()

	cfg := serverConfig{
		DefaultTimeout: *reqTimeout,
		MaxTimeout:     *maxTimeout,
		MaxBody:        *maxBody,
		ScanWindow:     *scanWindow,
		BatchWorkers:   *batchWorkers,
		TraceRequests:  *traceRequests,
		TraceRing:      *traceRing,
		TraceSlowest:   *traceSlowest,
	}
	if *accessLog {
		cfg.Logger = logger
	}
	srv := newServer(session, comps, mtr, cfg)
	publishExpvar(srv.snapshot)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("listening", "addr", ln.Addr().String())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}

	httpSrv := &http.Server{Handler: srv.mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: flip health to 503, let every in-flight request
	// finish (http.Server.Shutdown waits for active handlers), then drain
	// and release the session. Requests arriving during the drain are
	// refused by the closed listener or answered 503 by the closed session.
	logger.Info("draining")
	srv.draining.Store(true)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %d requests still in flight after %v: %w",
			srv.inFlight.Load(), *drainTimeout, err)
	}
	if err := session.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("session drain: %w", err)
	}
	if *traceOut != "" && srv.ring != nil {
		if err := dumpTraces(*traceOut, srv.ring); err != nil {
			logger.Error("trace-out", "path", *traceOut, "err", err.Error())
		} else {
			logger.Info("trace-out written", "path", *traceOut)
		}
	}
	st := srv.serverStats()
	logger.Info("drained",
		"requests", st.Requests, "ok", st.OK, "shed", st.Shed,
		"unavailable", st.Unavailable, "in_flight", st.InFlight)
	if st.InFlight != 0 {
		return fmt.Errorf("drain dropped %d in-flight requests", st.InFlight)
	}
	return nil
}

// dumpTraces writes the ring's retained traces (the recent window, then
// any slowest-N entries that already rotated out of it) as one Chrome
// trace-event file.
func dumpTraces(path string, ring *trace.Ring) error {
	rs := ring.Snapshot()
	snaps := rs.Recent
	have := make(map[string]bool, len(snaps))
	for _, s := range snaps {
		have[s.ID] = true
	}
	for _, s := range rs.Slowest {
		if !have[s.ID] {
			snaps = append(snaps, s)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, snaps); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// expvarOnce guards the process-wide expvar registration: run may be
// invoked more than once (tests), Publish panics on duplicates.
var (
	expvarOnce sync.Once
	expvarSnap func() bpmax.MetricsSnapshot
	expvarMu   sync.Mutex
)

// publishExpvar exposes the observability snapshot at /debug/vars under
// the "bpmax" key, next to the standard memstats. Re-registration (tests)
// swaps the snapshot source instead of panicking.
func publishExpvar(snapshot func() bpmax.MetricsSnapshot) {
	expvarMu.Lock()
	expvarSnap = snapshot
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("bpmax", expvar.Func(func() any {
			expvarMu.Lock()
			f := expvarSnap
			expvarMu.Unlock()
			if f == nil {
				return nil
			}
			return f()
		}))
	})
}
