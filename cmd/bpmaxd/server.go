package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/bpmax-go/bpmax"
	"github.com/bpmax-go/bpmax/internal/cliflags"
	"github.com/bpmax-go/bpmax/internal/metrics"
	"github.com/bpmax-go/bpmax/internal/trace"
)

// statusClientClosed is the nginx-convention status for "client closed the
// connection before the response": never seen by the (gone) client, but it
// keeps the access accounting honest.
const statusClientClosed = 499

// serverConfig carries the HTTP-layer knobs from flags to newServer.
type serverConfig struct {
	// DefaultTimeout bounds requests that do not send timeout_ms
	// (0 = unbounded).
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request timeout_ms a client may ask for
	// (0 = uncapped).
	MaxTimeout time.Duration
	// MaxBody bounds request bodies in bytes.
	MaxBody int64
	// ScanWindow is the span used when a scan request omits w1/w2.
	ScanWindow int
	// BatchWorkers is the worker budget of /v1/batch (0 = all CPUs).
	BatchWorkers int
	// TraceRequests arms per-request tracing: X-Request-ID echo,
	// Server-Timing stage breakdowns, and the /debug/requests ring. Off by
	// default so the zero config matches the untraced fast path.
	TraceRequests bool
	// TraceRing / TraceSlowest size the /debug/requests retention window
	// (recent and slowest-N respectively; 0 = defaults).
	TraceRing    int
	TraceSlowest int
	// Logger receives per-request access records and server lifecycle
	// events; nil disables access logging entirely.
	Logger *slog.Logger
}

// server is the HTTP front-end over one Session. All handler state is
// either immutable after newServer or atomic; handlers run on the
// net/http goroutine pool.
type server struct {
	session *bpmax.Session
	comps   *cliflags.Components
	metrics *bpmax.Metrics // nil unless -fold-metrics
	cfg     serverConfig
	mux     *http.ServeMux
	ring    *trace.Ring  // nil unless TraceRequests
	logger  *slog.Logger // nil unless configured

	draining atomic.Bool

	requests    atomic.Int64
	inFlight    atomic.Int64
	ok2xx       atomic.Int64
	badReq      atomic.Int64
	shed        atomic.Int64
	unavailable atomic.Int64
	timeouts    atomic.Int64
	failed      atomic.Int64
	disconnects atomic.Int64
}

// newServer wires the endpoint table. comps holds the serving components
// the session was built from (for stats and Retry-After introspection);
// mtr is non-nil only when fold-level metrics are on.
func newServer(session *bpmax.Session, comps *cliflags.Components, mtr *bpmax.Metrics, cfg serverConfig) *server {
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 8 << 20
	}
	if cfg.ScanWindow <= 0 {
		cfg.ScanWindow = 64
	}
	s := &server{session: session, comps: comps, metrics: mtr, cfg: cfg, mux: http.NewServeMux(), logger: cfg.Logger}
	if cfg.TraceRequests {
		recent, slowest := cfg.TraceRing, cfg.TraceSlowest
		if recent <= 0 {
			recent = 128
		}
		if slowest <= 0 {
			slowest = 32
		}
		s.ring = trace.NewRing(recent, slowest)
	}
	s.mux.HandleFunc("/v1/fold", s.serve("fold", s.handleFold))
	s.mux.HandleFunc("/v1/batch", s.serve("batch", s.handleBatch))
	s.mux.HandleFunc("/v1/scan", s.serve("scan", s.handleScan))
	s.mux.HandleFunc("/v1/cache", s.handleCache)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics/prom", s.handleProm)
	s.mux.HandleFunc("/debug/requests", s.handleRequests)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// serve wraps a /v1 handler with request accounting (every serving request
// is counted exactly once into the status-class counters the load harness
// reconciles against its own client-side tallies), per-request tracing
// (when armed: honor or mint X-Request-ID, thread a trace through the
// request context, record it into the debug ring on completion), and the
// access log. With tracing off and no logger, the wrapper is the seed's
// counter bump and nothing else.
func (s *server) serve(op string, h func(w http.ResponseWriter, r *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		s.inFlight.Add(1)
		var tr *trace.Trace
		var start time.Time
		if s.ring != nil {
			id := r.Header.Get("X-Request-ID")
			if id == "" {
				id = trace.NewID()
			}
			// Echo before the handler runs so even error paths that write
			// headers directly (499) carry the correlation ID.
			w.Header().Set("X-Request-ID", id)
			tr = trace.New(id, op)
			r = r.WithContext(trace.NewContext(r.Context(), tr))
		} else if s.logger != nil {
			start = time.Now()
		}
		code := h(w, r)
		s.inFlight.Add(-1)
		if tr != nil {
			tr.Finish(code)
			snap := tr.Snapshot()
			s.ring.Record(snap)
			if s.logger != nil {
				s.logger.LogAttrs(context.Background(), slog.LevelInfo, "request",
					slog.String("request_id", snap.ID),
					slog.String("op", op),
					slog.String("name", snap.Name),
					slog.Int("status", code),
					slog.Float64("dur_ms", float64(snap.TotalNanos)/1e6),
				)
			}
		} else if s.logger != nil {
			s.logger.LogAttrs(context.Background(), slog.LevelInfo, "request",
				slog.String("op", op),
				slog.Int("status", code),
				slog.Float64("dur_ms", float64(time.Since(start))/1e6),
			)
		}
		switch {
		case code >= 200 && code < 300:
			s.ok2xx.Add(1)
		case code == http.StatusTooManyRequests:
			s.shed.Add(1)
		case code == statusClientClosed:
			s.disconnects.Add(1)
		case code == http.StatusServiceUnavailable:
			s.unavailable.Add(1)
		case code == http.StatusGatewayTimeout:
			s.timeouts.Add(1)
		case code >= 500:
			s.failed.Add(1)
		default:
			s.badReq.Add(1)
		}
	}
}

// requestContext maps the wire deadline onto the fold context: the
// client's disconnect already cancels r.Context(); timeout_ms (clamped to
// MaxTimeout) or the server default adds the deadline the pipeline's
// cooperative checks honor.
func (s *server) requestContext(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	d := s.cfg.DefaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (d <= 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// errorJSON is the error body of every non-2xx response.
type errorJSON struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// foldJSON is the /v1/fold and /v1/scan request body (scan reads W1/W2).
type foldJSON struct {
	// Name is a client-side correlation label (trace replay, logs); the
	// server copies it onto the request trace so /debug/requests and the
	// access log can be joined back to replay entries.
	Name      string `json:"name"`
	Seq1      string `json:"seq1"`
	Seq2      string `json:"seq2"`
	TimeoutMs int64  `json:"timeout_ms"`
	Structure bool   `json:"structure"`
	W1        int    `json:"w1"`
	W2        int    `json:"w2"`
	// Algebra selects the evaluation semiring per request: "" or "maxplus"
	// for the BPMax score, "partition" for the BPPart log-partition
	// function (the response then carries logz/logz1/logz2). KT is the
	// Boltzmann temperature factor for partition requests (0 = 1.0).
	Algebra string  `json:"algebra"`
	KT      float64 `json:"kt"`
}

// algebraOptions maps a request's algebra/kt fields to fold options; empty
// fields add nothing, so the common max-plus request keeps the session's
// pre-parsed option set.
func algebraOptions(algebra string, kt float64) []bpmax.Option {
	var extra []bpmax.Option
	if algebra != "" {
		extra = append(extra, bpmax.WithAlgebra(bpmax.Algebra(algebra)))
	}
	if kt != 0 {
		extra = append(extra, bpmax.WithKT(kt))
	}
	return extra
}

// structureJSON is the optional traceback section of a fold response.
type structureJSON struct {
	Bracket1 string `json:"bracket1"`
	Bracket2 string `json:"bracket2"`
	Intra1   int    `json:"intra1_pairs"`
	Intra2   int    `json:"intra2_pairs"`
	Inter    int    `json:"inter_bonds"`
}

// foldResponse is the /v1/fold response body. The logz fields are pointers
// so a legitimate 0 (a one-base ensemble) still serializes while max-plus
// responses stay byte-identical to the pre-partition wire format.
type foldResponse struct {
	Score       float32        `json:"score"`
	N1          int            `json:"n1"`
	N2          int            `json:"n2"`
	ElapsedNs   int64          `json:"elapsed_ns"`
	Degradation string         `json:"degradation"`
	Algebra     string         `json:"algebra,omitempty"`
	LogZ        *float64       `json:"logz,omitempty"`
	LogZ1       *float64       `json:"logz1,omitempty"`
	LogZ2       *float64       `json:"logz2,omitempty"`
	KT          float64        `json:"kt,omitempty"`
	Structure   *structureJSON `json:"structure,omitempty"`
	Window      *scanResponse  `json:"window,omitempty"`
}

// scanResponse is the /v1/scan response body (and the window section of a
// degraded fold).
type scanResponse struct {
	Best      float32 `json:"best"`
	I1        int     `json:"i1"`
	J1        int     `json:"j1"`
	I2        int     `json:"i2"`
	J2        int     `json:"j2"`
	ElapsedNs int64   `json:"elapsed_ns"`
}

func (s *server) handleFold(w http.ResponseWriter, r *http.Request) int {
	var req foldJSON
	if code := s.decode(w, r, &req); code != 0 {
		return code
	}
	tr := trace.FromContext(r.Context())
	tr.SetName(req.Name)
	if req.Algebra == string(bpmax.AlgebraPartition) && req.Structure {
		return s.writeJSON(w, r, http.StatusBadRequest, errorJSON{
			Error: "structure is undefined for algebra=partition (the ensemble has no single optimal structure)",
			Kind:  "invalid_request",
		})
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	res, err := s.session.FoldWith(ctx, req.Seq1, req.Seq2, algebraOptions(req.Algebra, req.KT)...)
	if err != nil {
		return s.writeError(w, r, err)
	}
	out := foldResponse{
		Score:       res.Score,
		N1:          res.N1,
		N2:          res.N2,
		ElapsedNs:   int64(res.Elapsed),
		Degradation: res.Degradation.String(),
	}
	if res.Algebra == bpmax.AlgebraPartition {
		out.Algebra = string(res.Algebra)
		lz, l1, l2 := res.LogZ, res.LogZ1, res.LogZ2
		out.LogZ, out.LogZ1, out.LogZ2 = &lz, &l1, &l2
		out.KT = res.KT
	}
	if res.Degradation == bpmax.DegradeWindowed {
		out.Window = &scanResponse{
			Best: res.Window.Best,
			I1:   res.Window.I1, J1: res.Window.J1,
			I2: res.Window.I2, J2: res.Window.J2,
			ElapsedNs: int64(res.Window.Elapsed),
		}
	} else if req.Structure {
		ts := tr.Begin()
		st := res.Structure()
		tr.End(trace.StageTraceback, ts)
		out.Structure = &structureJSON{
			Bracket1: st.Bracket1,
			Bracket2: st.Bracket2,
			Intra1:   len(st.Intra1),
			Intra2:   len(st.Intra2),
			Inter:    len(st.Inter),
		}
	}
	return s.writeJSON(w, r, http.StatusOK, out)
}

func (s *server) handleScan(w http.ResponseWriter, r *http.Request) int {
	var req foldJSON
	if code := s.decode(w, r, &req); code != 0 {
		return code
	}
	trace.FromContext(r.Context()).SetName(req.Name)
	if req.Algebra != "" && req.Algebra != string(bpmax.AlgebraMaxPlus) {
		return s.writeJSON(w, r, http.StatusBadRequest, errorJSON{
			Error: "windowed scans are max-plus only; algebra=" + req.Algebra + " has no banded form",
			Kind:  "invalid_request",
		})
	}
	w1, w2 := req.W1, req.W2
	if w1 <= 0 {
		w1 = s.cfg.ScanWindow
	}
	if w2 <= 0 {
		w2 = w1
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	res, err := s.session.ScanWindowed(ctx, req.Seq1, req.Seq2, w1, w2)
	if err != nil {
		return s.writeError(w, r, err)
	}
	return s.writeJSON(w, r, http.StatusOK, scanResponse{
		Best: res.Best,
		I1:   res.I1, J1: res.J1, I2: res.I2, J2: res.J2,
		ElapsedNs: int64(res.Elapsed),
	})
}

// batchJSON is the /v1/batch request body. Algebra/KT apply to every item
// of the batch (a screen runs one statistic across all pairs).
type batchJSON struct {
	Items []struct {
		Name string `json:"name"`
		Seq1 string `json:"seq1"`
		Seq2 string `json:"seq2"`
	} `json:"items"`
	TimeoutMs int64   `json:"timeout_ms"`
	Algebra   string  `json:"algebra"`
	KT        float64 `json:"kt"`
}

// batchItemResponse is one item of the /v1/batch response; failed items
// carry Error and zero scores. Partition batches report logz per item and
// Gain in the log domain (log Z_12 − log Z_1 − log Z_2).
type batchItemResponse struct {
	Name        string   `json:"name"`
	Score       float32  `json:"score"`
	LogZ        *float64 `json:"logz,omitempty"`
	Gain        float32  `json:"gain"`
	Degradation string   `json:"degradation"`
	Error       string   `json:"error,omitempty"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) int {
	var req batchJSON
	if code := s.decode(w, r, &req); code != 0 {
		return code
	}
	if len(req.Items) == 0 {
		return s.writeJSON(w, r, http.StatusBadRequest, errorJSON{Error: "batch has no items", Kind: "invalid_request"})
	}
	items := make([]bpmax.BatchItem, len(req.Items))
	for i, it := range req.Items {
		name := it.Name
		if name == "" {
			name = fmt.Sprintf("item-%d", i)
		}
		items[i] = bpmax.BatchItem{Name: name, Seq1: it.Seq1, Seq2: it.Seq2}
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	results := s.session.FoldBatchWith(ctx, items, s.cfg.BatchWorkers, algebraOptions(req.Algebra, req.KT)...)
	out := struct {
		Results []batchItemResponse `json:"results"`
		Failed  int                 `json:"failed"`
	}{Results: make([]batchItemResponse, len(results))}
	closed := 0
	for i, br := range results {
		item := batchItemResponse{Name: br.Name, Degradation: br.Degradation.String()}
		if br.Err != nil {
			item.Error = br.Err.Error()
			out.Failed++
			if errors.Is(br.Err, bpmax.ErrSessionClosed) {
				closed++
			}
		} else {
			item.Score = br.Result.Score
			item.Gain = br.Gain
			if br.Result.Algebra == bpmax.AlgebraPartition {
				lz := br.Result.LogZ
				item.LogZ = &lz
			}
		}
		out.Results[i] = item
	}
	// A batch whose every item failed because the session is closed is the
	// drain refusing the whole request, not a partial result.
	if closed == len(results) {
		return s.writeError(w, r, bpmax.ErrSessionClosed)
	}
	return s.writeJSON(w, r, http.StatusOK, out)
}

// handleCache is the cache-introspection endpoint: the configured cache's
// stats, or 404 when the server runs uncached.
func (s *server) handleCache(w http.ResponseWriter, r *http.Request) {
	if s.comps.Cache == nil {
		s.writeJSON(w, r, http.StatusNotFound, errorJSON{Error: "no cache configured (-cache)", Kind: "no_cache"})
		return
	}
	s.writeJSON(w, r, http.StatusOK, s.comps.Cache.Stats())
}

// handleHealthz is the liveness/readiness probe: 200 while serving, 503
// once the drain began.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves the full observability document: cumulative fold
// totals (zero unless -fold-metrics), component stats, and the HTTP
// layer's own request accounting.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, s.snapshot())
}

// handleProm serves the same document as /metrics in Prometheus text
// exposition format, for scrapers that do not speak the JSON shape.
func (s *server) handleProm(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = metrics.WriteProm(w, &snap)
}

// handleRequests serves the trace ring: the most recent and slowest
// requests with their per-stage breakdowns. 404 with a machine-readable
// kind when the server runs untraced, so probes can tell "off" from
// "empty".
func (s *server) handleRequests(w http.ResponseWriter, r *http.Request) {
	if s.ring == nil {
		s.writeJSON(w, r, http.StatusNotFound, errorJSON{Error: "request tracing disabled (-trace-requests=false)", Kind: "tracing_disabled"})
		return
	}
	s.writeJSON(w, r, http.StatusOK, s.ring.Snapshot())
}

// snapshot assembles the /metrics document; also published via expvar.
func (s *server) snapshot() bpmax.MetricsSnapshot {
	var snap bpmax.MetricsSnapshot
	if s.metrics != nil {
		snap = s.metrics.Snapshot()
	}
	s.comps.Attach(&snap)
	sst := s.serverStats()
	snap.Server = &sst
	rt := bpmax.ReadRuntimeStats()
	snap.Runtime = &rt
	return snap
}

// serverStats snapshots the HTTP layer's counters.
func (s *server) serverStats() bpmax.ServerStats {
	return bpmax.ServerStats{
		Requests:    s.requests.Load(),
		InFlight:    s.inFlight.Load(),
		OK:          s.ok2xx.Load(),
		BadRequest:  s.badReq.Load(),
		Shed:        s.shed.Load(),
		Unavailable: s.unavailable.Load(),
		Timeouts:    s.timeouts.Load(),
		Failed:      s.failed.Load(),
		Disconnects: s.disconnects.Load(),
		Draining:    s.draining.Load(),
	}
}

// decode parses a POST JSON body; a non-zero return is the status already
// written (method and body errors). The read+parse is the trace's "decode"
// stage — it includes the wire time of a body still in flight.
func (s *server) decode(w http.ResponseWriter, r *http.Request, into any) int {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		return s.writeJSON(w, r, http.StatusMethodNotAllowed, errorJSON{Error: "POST only", Kind: "method"})
	}
	tr := trace.FromContext(r.Context())
	ds := tr.Begin()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	dec.DisallowUnknownFields()
	err := dec.Decode(into)
	tr.End(trace.StageDecode, ds)
	if err != nil {
		return s.writeJSON(w, r, http.StatusBadRequest, errorJSON{Error: "bad request body: " + err.Error(), Kind: "invalid_request"})
	}
	return 0
}

// writeError maps a pipeline error onto the wire contract — 429 +
// Retry-After for shed load, 503 for the drain, 504 for expired deadlines,
// 499 accounting for vanished clients, 413 for over-budget folds, 500 for
// isolated solver failures, 400 for input the solver rejected — and writes
// the JSON error body.
func (s *server) writeError(w http.ResponseWriter, r *http.Request, err error) int {
	var ae *bpmax.AdmissionError
	var mle *bpmax.MemoryLimitError
	switch {
	case errors.Is(err, bpmax.ErrSessionClosed):
		w.Header().Set("Connection", "close")
		return s.writeJSON(w, r, http.StatusServiceUnavailable, errorJSON{Error: err.Error(), Kind: "draining"})
	case errors.Is(err, bpmax.ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		return s.writeJSON(w, r, http.StatusTooManyRequests, errorJSON{Error: err.Error(), Kind: "queue_full"})
	case errors.As(err, &ae), errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// Admission expiries unwrap to the context error; either way the
		// question is whose clock ran out: the request's deadline (504) or
		// the client's patience (disconnect, 499 — nobody reads the body).
		if errors.Is(err, context.DeadlineExceeded) {
			return s.writeJSON(w, r, http.StatusGatewayTimeout, errorJSON{Error: err.Error(), Kind: "deadline"})
		}
		w.WriteHeader(statusClientClosed)
		return statusClientClosed
	case errors.As(err, &mle):
		return s.writeJSON(w, r, http.StatusRequestEntityTooLarge, errorJSON{Error: err.Error(), Kind: "memory_limit"})
	case bpmax.IsTransient(err):
		return s.writeJSON(w, r, http.StatusInternalServerError, errorJSON{Error: err.Error(), Kind: "transient"})
	default:
		// What remains is input the pipeline rejected (invalid bases,
		// malformed windows): the caller's to fix.
		return s.writeJSON(w, r, http.StatusBadRequest, errorJSON{Error: err.Error(), Kind: "invalid_request"})
	}
}

// retryAfter derives the 429 Retry-After hint from the admission gate's
// live occupancy: queue depth over concurrency estimates how many "turns"
// a retry would wait, scaled by the gate's observed mean wait (floored at
// one second so clients never busy-loop).
func (s *server) retryAfter() int {
	if s.comps.Admission == nil {
		return 1
	}
	st := s.comps.Admission.Stats()
	turns := float64(st.QueueDepth+1) / float64(st.MaxConcurrent)
	meanWait := time.Second
	if st.Admitted > 0 {
		if w := time.Duration(st.WaitNanosTotal / st.Admitted); w > meanWait {
			meanWait = w
		}
	}
	secs := int(turns * meanWait.Seconds())
	if secs < 1 {
		secs = 1
	}
	return secs
}

// writeJSON writes one JSON response and returns the status for the
// accounting wrapper. When the request carries a trace, the response gets a
// Server-Timing header with the per-stage breakdown (stamped before
// WriteHeader — which is why the encode stage itself is in the trace ring
// but never in the header), and the body encode is recorded as the
// "encode" stage.
func (s *server) writeJSON(w http.ResponseWriter, r *http.Request, code int, v any) int {
	tr := trace.FromContext(r.Context())
	if st := tr.ServerTiming(); st != "" {
		w.Header().Set("Server-Timing", st)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	es := tr.Begin()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client may be gone; accounting already has the code
	tr.End(trace.StageEncode, es)
	return code
}
