package main

import (
	"encoding/json"
	"math"
	"net/http"
	"testing"

	"github.com/bpmax-go/bpmax"
)

// TestFoldPartitionEndpoint: the acceptance-criteria request — a partition
// fold over the wire returns a finite logZ dominating the max-plus score
// scaled by 1/kT, and the max-plus response shape is untouched (no logz
// keys).
func TestFoldPartitionEndpoint(t *testing.T) {
	s, _ := newTestServer(t, nil, serverConfig{})
	const s1, s2 = "GGGAAACCC", "GGGUUUCCC"
	ref, err := bpmax.Fold(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	for _, kT := range []float64{1.0, 0.5} {
		body := map[string]any{"seq1": s1, "seq2": s2, "algebra": "partition"}
		if kT != 1.0 {
			body["kt"] = kT
		}
		rec := post(s, "/v1/fold", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("kT=%g: status %d: %s", kT, rec.Code, rec.Body)
		}
		var out foldResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		if out.Algebra != "partition" || out.KT != kT {
			t.Fatalf("kT=%g: labeled algebra=%q kt=%g", kT, out.Algebra, out.KT)
		}
		if out.LogZ == nil || math.IsInf(*out.LogZ, 0) || math.IsNaN(*out.LogZ) {
			t.Fatalf("kT=%g: logz = %v, want finite", kT, out.LogZ)
		}
		if bound := float64(ref.Score) / kT; *out.LogZ < bound {
			t.Fatalf("kT=%g: logz %v < score/kT %v", kT, *out.LogZ, bound)
		}
		if out.LogZ1 == nil || out.LogZ2 == nil {
			t.Fatalf("kT=%g: per-strand logz missing: %+v", kT, out)
		}
	}
	// Max-plus responses stay byte-compatible: no algebra/logz/kt keys.
	rec := post(s, "/v1/fold", map[string]any{"seq1": s1, "seq2": s2})
	var raw map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"algebra", "logz", "logz1", "logz2", "kt"} {
		if _, ok := raw[key]; ok {
			t.Errorf("maxplus response leaked %q: %s", key, rec.Body)
		}
	}
}

// TestPartitionStructureRejected: a partition ensemble has no single
// structure; asking for one is a client error, not a panic.
func TestPartitionStructureRejected(t *testing.T) {
	s, _ := newTestServer(t, nil, serverConfig{})
	rec := post(s, "/v1/fold", map[string]any{
		"seq1": "GGGG", "seq2": "CCCC", "algebra": "partition", "structure": true,
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
}

// TestScanPartitionRejected: windowed scans are max-plus only.
func TestScanPartitionRejected(t *testing.T) {
	s, _ := newTestServer(t, nil, serverConfig{ScanWindow: 4})
	rec := post(s, "/v1/scan", map[string]any{
		"seq1": "GGGAAACCC", "seq2": "GGGUUUCCC", "algebra": "partition",
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
}

// TestBatchPartitionEndpoint: a partition batch reports per-item logz and
// the log-odds gain; a max-plus batch reports neither.
func TestBatchPartitionEndpoint(t *testing.T) {
	s, _ := newTestServer(t, nil, serverConfig{})
	rec := post(s, "/v1/batch", map[string]any{
		"algebra": "partition",
		"items": []map[string]string{
			{"name": "a", "seq1": "GGGG", "seq2": "CCCC"},
			{"name": "b", "seq1": "AAGG", "seq2": "CCUU"},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var out struct {
		Results []batchItemResponse `json:"results"`
		Failed  int                 `json:"failed"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Failed != 0 || len(out.Results) != 2 {
		t.Fatalf("batch: %+v", out)
	}
	for _, r := range out.Results {
		if r.LogZ == nil || math.IsNaN(*r.LogZ) || math.IsInf(*r.LogZ, 0) {
			t.Errorf("%s: logz = %v", r.Name, r.LogZ)
		}
	}
	rec = post(s, "/v1/batch", map[string]any{
		"items": []map[string]string{{"name": "a", "seq1": "GGGG", "seq2": "CCCC"}},
	})
	var raw struct {
		Results []map[string]any `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw.Results[0]["logz"]; ok {
		t.Errorf("maxplus batch item leaked logz: %s", rec.Body)
	}
}
