// Command bpmax folds two RNA sequences with the BPMax RNA-RNA interaction
// algorithm and prints the optimal score and one optimal joint structure.
//
// Usage:
//
//	bpmax [flags] SEQ1 SEQ2
//	bpmax [flags] -fasta interactions.fa     # first two records
//
// Examples:
//
//	bpmax GGGAAACCC GGGUUUCCC
//	bpmax -variant base -workers 1 GGGAAACCC GGGUUUCCC
//	bpmax -window 64 longseq1.txt-content longseq2.txt-content
//	bpmax -timeout 30s -mem-limit 2GB -degrade-window 100 SEQ1 SEQ2
//	bpmax -fasta pairs.fa -batch -engine -1 -pool    # screen on shared workers + pooled tables
//	bpmax -fasta pairs.fa -batch -cache 256MB -admit 4   # cache repeated strands, gate concurrency
//	bpmax -metrics-json - GGGAAACCC GGGUUUCCC        # emit fold metrics as JSON on stdout
//	bpmax -pprof localhost:6060 -fasta pairs.fa -batch   # profile a screen live
//
// The serving knobs (-variant, -engine, -pool, -cache, -admit, -retry,
// -failpoints, ...) are shared verbatim with the bpmaxd network server; see
// internal/cliflags.
//
// A first SIGINT cancels the fold gracefully (the partial table is
// discarded and the process exits with an error); a second one kills the
// process the usual way.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"time"

	"github.com/bpmax-go/bpmax"
	"github.com/bpmax-go/bpmax/internal/cliflags"
)

func main() {
	// NotifyContext cancels on the first SIGINT and, by restoring the
	// default handler after cancellation, lets a second SIGINT terminate a
	// process stuck past the cooperative checkpoints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bpmax:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("bpmax", flag.ContinueOnError)
	serving := cliflags.NewServing()
	serving.Register(fs)
	window := fs.Int("window", 0, "windowed scan with this span for both sequences (0 = full fold)")
	timeout := fs.Duration("timeout", 0, "abort the fold after this long, e.g. 30s (0 = no deadline)")
	fasta := fs.String("fasta", "", "read the first two records of this FASTA file instead of arguments")
	resolve := fs.Int64("resolve", 0, "accept IUPAC ambiguity codes in FASTA, resolving them randomly with this seed (0 = strict)")
	batch := fs.Bool("batch", false, "treat the FASTA file as consecutive pairs; fold all and rank by interaction gain")
	structure := fs.Bool("structure", true, "print an optimal joint structure")
	draw := fs.Bool("draw", false, "draw the joint structure as an ASCII duplex diagram")
	ensemble := fs.Bool("ensemble", false, "print per-strand ensemble statistics (structure counts, logZ)")
	algebra := fs.String("algebra", "maxplus", "evaluation semiring: maxplus (BPMax optimal score) or partition (BPPart log-partition function)")
	kt := fs.Float64("kt", 1.0, "Boltzmann temperature factor kT for -algebra partition, in pair-weight units")
	stats := fs.Bool("stats", false, "print timing, GFLOPS and table size")
	metricsJSON := fs.String("metrics-json", "", "write fold metrics as JSON to this file ('-' = stdout)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and expvar metrics on this address (e.g. localhost:6060) while folding")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if ctx == nil {
		ctx = context.Background()
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	comps, err := serving.Build()
	if err != nil {
		return err
	}
	defer comps.Close()
	options := comps.Options
	options = append(options, bpmax.WithAlgebra(bpmax.Algebra(*algebra)), bpmax.WithKT(*kt))

	var mtr *bpmax.Metrics
	if *metricsJSON != "" || *pprofAddr != "" {
		mtr = bpmax.NewMetrics()
		options = append(options, bpmax.WithMetrics(mtr))
	}
	// snapshot assembles the full observability document: cumulative fold
	// totals plus the stats of every serving component that is on.
	snapshot := func() bpmax.MetricsSnapshot {
		s := mtr.Snapshot()
		comps.Attach(&s)
		return s
	}
	if *pprofAddr != "" {
		publishExpvar(snapshot)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "bpmax: pprof server:", err)
			}
		}()
	}
	// writeMetrics emits the -metrics-json document; fold is the single
	// fold's record (nil in batch mode, where only totals apply).
	writeMetrics := func(fold *bpmax.FoldSnapshot) error {
		if *metricsJSON == "" {
			return nil
		}
		doc := struct {
			Fold   *bpmax.FoldSnapshot   `json:"fold,omitempty"`
			Totals bpmax.MetricsSnapshot `json:"totals"`
		}{fold, snapshot()}
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if *metricsJSON == "-" {
			_, err = os.Stdout.Write(raw)
			return err
		}
		return os.WriteFile(*metricsJSON, raw, 0o644)
	}

	var s1, s2, name1, name2 string
	if *fasta != "" {
		recs, err := bpmax.LoadFasta(*fasta, *resolve)
		if err != nil {
			return err
		}
		if *batch {
			if err := runBatch(ctx, recs, serving.Workers, options); err != nil {
				return err
			}
			return writeMetrics(nil)
		}
		if len(recs) < 2 {
			return fmt.Errorf("FASTA file %s has %d records, need 2", *fasta, len(recs))
		}
		s1, s2 = recs[0].Seq, recs[1].Seq
		name1, name2 = recs[0].Name, recs[1].Name
	} else {
		if fs.NArg() != 2 {
			return fmt.Errorf("need exactly two sequences (or -fasta); got %d args", fs.NArg())
		}
		s1, s2 = fs.Arg(0), fs.Arg(1)
		name1, name2 = "seq1", "seq2"
	}

	if *window > 0 {
		res, err := bpmax.ScanWindowedContext(ctx, s1, s2, *window, *window, options...)
		if err != nil {
			return describeFoldErr(err)
		}
		fmt.Printf("best windowed interaction score: %g\n", res.Best)
		fmt.Printf("at %s[%d..%d] x %s[%d..%d]\n", name1, res.I1, res.J1, name2, res.I2, res.J2)
		if *stats {
			fmt.Printf("scan time: %v  rate: %.1f Mcells/s  banded table: %.1f MB\n",
				res.Elapsed, cellRate(res.TableBytes/4, res.Elapsed), float64(res.TableBytes)/(1<<20))
			printRuntimeStats()
		}
		if mtr != nil {
			fold := res.Metrics.Snapshot()
			return writeMetrics(&fold)
		}
		return nil
	}

	res, err := bpmax.FoldContext(ctx, s1, s2, options...)
	if err != nil {
		return describeFoldErr(err)
	}
	if res.Degradation != bpmax.DegradeNone {
		fmt.Printf("note: fold degraded to the %s layout to fit the memory limit\n", res.Degradation)
	}
	switch {
	case res.Degradation == bpmax.DegradeWindowed:
		w := res.Window
		fmt.Printf("best windowed interaction score: %g\n", w.Best)
		fmt.Printf("at %s[%d..%d] x %s[%d..%d]\n", name1, w.I1, w.J1, name2, w.I2, w.J2)
	case res.Algebra == bpmax.AlgebraPartition:
		fmt.Printf("log partition function: logZ = %.4f at kT=%g  (%s: %d nt, %s: %d nt)\n",
			res.LogZ, res.KT, name1, res.N1, name2, res.N2)
		fmt.Printf("per-strand logZ: %.4f + %.4f  interaction gain: %.4f\n",
			res.LogZ1, res.LogZ2, res.LogZ-res.LogZ1-res.LogZ2)
	default:
		fmt.Printf("interaction score: %g  (%s: %d nt, %s: %d nt)\n", res.Score, name1, res.N1, name2, res.N2)
	}
	if res.Algebra == bpmax.AlgebraPartition {
		// Structures and duplex drawings are max-plus notions; the ensemble
		// has no single optimal structure to render.
		*structure, *draw = false, false
	}
	if *structure {
		st := res.Structure()
		fmt.Printf("%s  %s\n", st.Bracket1, name1)
		fmt.Printf("%s  %s\n", st.Bracket2, name2)
		fmt.Printf("intramolecular pairs: %d + %d, intermolecular bonds: %d\n",
			len(st.Intra1), len(st.Intra2), len(st.Inter))
	}
	if *draw {
		fmt.Print(res.Structure().Draw(s1norm(s1), s1norm(s2)))
	}
	if *ensemble {
		for i, s := range []string{s1, s2} {
			ens, err := bpmax.SingleEnsemble(s, 1.0)
			if err != nil {
				return err
			}
			fmt.Printf("strand %d ensemble: %.0f structures, %.0f co-optimal, logZ(kT=1) = %.2f\n",
				i+1, ens.Structures, ens.Cooptimal, ens.LogZ)
		}
	}
	if *stats {
		if res.Degradation == bpmax.DegradeWindowed {
			fmt.Printf("scan time: %v  rate: %.1f Mcells/s  banded table: %.1f MB\n",
				res.Elapsed, cellRate(res.TableBytes/4, res.Elapsed), float64(res.TableBytes)/(1<<20))
		} else {
			fmt.Printf("fill time: %v  rate: %.2f GFLOPS  table: %.1f MB\n",
				res.Elapsed, res.GFLOPS(), float64(res.TableBytes)/(1<<20))
		}
		printRuntimeStats()
	}
	if mtr != nil {
		fold := res.Metrics.Snapshot()
		return writeMetrics(&fold)
	}
	return nil
}

// printRuntimeStats appends the Go runtime health line to -stats output:
// the process-level signals (GC pauses, scheduler delay) that explain
// fill-time variance the solver's own counters cannot.
func printRuntimeStats() {
	rt := bpmax.ReadRuntimeStats()
	fmt.Printf("runtime: %d goroutines  gc: %d cycles / %v paused  heap: %.1f MB  sched p99: %v\n",
		rt.Goroutines, rt.NumGC, time.Duration(rt.GCPauseTotalNanos),
		float64(rt.HeapAllocBytes)/(1<<20), time.Duration(rt.SchedLatencyP99Nanos))
}

// expvarOnce guards the process-wide expvar registration: run may be
// invoked more than once (tests), Publish panics on duplicates.
var expvarOnce sync.Once

// publishExpvar exposes the observability snapshot at /debug/vars under
// the "bpmax" key, next to the standard memstats.
func publishExpvar(snapshot func() bpmax.MetricsSnapshot) {
	expvarOnce.Do(func() {
		expvar.Publish("bpmax", expvar.Func(func() any { return snapshot() }))
	})
}

// describeFoldErr rewrites the robustness-layer errors into actionable CLI
// messages; anything else passes through.
func describeFoldErr(err error) error {
	var mle *bpmax.MemoryLimitError
	var ae *bpmax.AdmissionError
	switch {
	case errors.As(err, &ae):
		if errors.Is(err, bpmax.ErrQueueFull) {
			return fmt.Errorf("%w; raise -admit or -admit-queue", err)
		}
		return fmt.Errorf("%w; raise -timeout or -admit", err)
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("fold exceeded -timeout and was cancelled (%w)", err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("fold interrupted (%w)", err)
	case errors.As(err, &mle):
		return fmt.Errorf("%w; raise -mem-limit or enable -degrade-window", err)
	}
	return err
}

// cellRate converts a cell count and duration to millions of cells/second.
func cellRate(cells int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(cells) / d.Seconds() / 1e6
}

// runBatch folds consecutive FASTA pairs and prints them ranked by
// interaction gain, with per-item failure and degradation status.
func runBatch(ctx context.Context, recs []bpmax.FastaRecord, workers int, options []bpmax.Option) error {
	items, err := bpmax.PairsFromFasta(recs)
	if err != nil {
		return err
	}
	results := bpmax.FoldBatchContext(ctx, items, workers, options...)
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "bpmax: skipping %v\n", r.Err)
		}
	}
	ranked := bpmax.RankByGain(results)
	fmt.Printf("%-40s %10s %10s  %s\n", "pair", "score", "gain", "status")
	for _, r := range ranked {
		status := "ok"
		if r.Degradation != bpmax.DegradeNone {
			status = "degraded:" + r.Degradation.String()
		}
		// Partition items report logZ in the score column (their Score is 0
		// by construction); Gain is already the matching log-domain statistic.
		val := float64(r.Result.Score)
		if r.Result.Algebra == bpmax.AlgebraPartition {
			val = r.Result.LogZ
		}
		fmt.Printf("%-40s %10.1f %10.1f  %s\n", r.Name, val, r.Gain, status)
	}
	if failed > 0 {
		fmt.Printf("%d of %d pairs failed (timeouts/cancellations/errors reported above)\n", failed, len(results))
	}
	return nil
}

// s1norm upper-cases and T->U normalizes a raw argument for display next
// to 0-based structure coordinates.
func s1norm(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z':
			out[i] = c - 'a' + 'A'
		}
		if out[i] == 'T' {
			out[i] = 'U'
		}
	}
	return string(out)
}
