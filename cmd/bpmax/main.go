// Command bpmax folds two RNA sequences with the BPMax RNA-RNA interaction
// algorithm and prints the optimal score and one optimal joint structure.
//
// Usage:
//
//	bpmax [flags] SEQ1 SEQ2
//	bpmax [flags] -fasta interactions.fa     # first two records
//
// Examples:
//
//	bpmax GGGAAACCC GGGUUUCCC
//	bpmax -variant base -workers 1 GGGAAACCC GGGUUUCCC
//	bpmax -window 64 longseq1.txt-content longseq2.txt-content
//	bpmax -timeout 30s -mem-limit 2GB -degrade-window 100 SEQ1 SEQ2
//	bpmax -fasta pairs.fa -batch -engine -1 -pool    # screen on shared workers + pooled tables
//	bpmax -fasta pairs.fa -batch -cache 256MB -admit 4   # cache repeated strands, gate concurrency
//	bpmax -metrics-json - GGGAAACCC GGGUUUCCC        # emit fold metrics as JSON on stdout
//	bpmax -pprof localhost:6060 -fasta pairs.fa -batch   # profile a screen live
//
// A first SIGINT cancels the fold gracefully (the partial table is
// discarded and the process exits with an error); a second one kills the
// process the usual way.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/bpmax-go/bpmax"
	"github.com/bpmax-go/bpmax/internal/fault"
)

func main() {
	// NotifyContext cancels on the first SIGINT and, by restoring the
	// default handler after cancellation, lets a second SIGINT terminate a
	// process stuck past the cooperative checkpoints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bpmax:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("bpmax", flag.ContinueOnError)
	variant := fs.String("variant", string(bpmax.HybridTiled),
		"schedule: base, coarse, fine, hybrid, hybrid-tiled")
	workers := fs.Int("workers", 0, "parallel workers (0 = all CPUs)")
	tileI := fs.Int("tile-i2", 0, "i2 tile size (0 = default 64)")
	tileK := fs.Int("tile-k2", 0, "k2 tile size (0 = default 16)")
	tileJ := fs.Int("tile-j2", 0, "j2 tile size (0 = untiled/streaming)")
	window := fs.Int("window", 0, "windowed scan with this span for both sequences (0 = full fold)")
	unit := fs.Bool("unit", false, "unweighted pair counting instead of GC=3/AU=2/GU=1")
	substrate := fs.String("substrate", "auto",
		"substrate (Nussinov S-table) fill algorithm: auto, classic, four-russians (alias 4r)")
	packed := fs.Bool("packed", false, "use the packed (quarter-space) memory map")
	timeout := fs.Duration("timeout", 0, "abort the fold after this long, e.g. 30s (0 = no deadline)")
	memLimit := fs.String("mem-limit", "", "refuse folds whose table exceeds this size, e.g. 500MB or 2GB (empty = unlimited)")
	degradeWindow := fs.Int("degrade-window", 0, "with -mem-limit: fall back to a windowed scan with this span when the full table is over budget")
	fasta := fs.String("fasta", "", "read the first two records of this FASTA file instead of arguments")
	resolve := fs.Int64("resolve", 0, "accept IUPAC ambiguity codes in FASTA, resolving them randomly with this seed (0 = strict)")
	batch := fs.Bool("batch", false, "treat the FASTA file as consecutive pairs; fold all and rank by interaction gain")
	engine := fs.Int("engine", 0, "run on a persistent worker engine of this width (0 = off, -1 = all CPUs); batch mode always budgets one")
	pool := fs.Bool("pool", false, "recycle DP tables and fold state across folds (useful with -batch)")
	cacheFlag := fs.String("cache", "", "serve repeated strands/pairs from a content-addressed cache; value is the retention budget, e.g. 256MB ('0' = unlimited, empty = off)")
	admit := fs.Int("admit", 0, "admit at most this many concurrent folds; excess requests queue FIFO (0 = off)")
	admitQueue := fs.Int("admit-queue", 0, "with -admit: bound the wait queue, rejecting requests beyond it (0 = unbounded)")
	structure := fs.Bool("structure", true, "print an optimal joint structure")
	draw := fs.Bool("draw", false, "draw the joint structure as an ASCII duplex diagram")
	ensemble := fs.Bool("ensemble", false, "print per-strand ensemble statistics (structure counts, logZ)")
	retry := fs.Int("retry", 0, "retry transiently failed folds (solver panics, injected faults) up to this many total attempts with exponential backoff (0 = off)")
	failpoints := fs.String("failpoints", "",
		"arm fault-injection sites for resilience testing: comma-separated site=[count*]mode entries, "+
			"e.g. 'cache-leader=3*error,engine-iter=p0.01/7*panic,pool-acquire=once*delay(2ms)'; sites: "+
			strings.Join(fault.SiteNames(), ", "))
	stats := fs.Bool("stats", false, "print timing, GFLOPS and table size")
	metricsJSON := fs.String("metrics-json", "", "write fold metrics as JSON to this file ('-' = stdout)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and expvar metrics on this address (e.g. localhost:6060) while folding")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if ctx == nil {
		ctx = context.Background()
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	limitBytes, err := parseBytes(*memLimit)
	if err != nil {
		return fmt.Errorf("-mem-limit: %w", err)
	}
	options, err := buildOpts(*variant, *substrate, *workers, *tileI, *tileK, *tileJ, *unit, *packed, limitBytes, *degradeWindow)
	if err != nil {
		return err
	}
	if *retry > 0 {
		options = append(options, bpmax.WithRetry(bpmax.RetryConfig{MaxAttempts: *retry}))
	}
	if *failpoints != "" {
		if err := fault.ArmSpec(*failpoints); err != nil {
			fault.Reset()
			return fmt.Errorf("-failpoints: %w", err)
		}
		defer fault.Reset()
	}
	var eng *bpmax.Engine
	if *engine != 0 {
		width := *engine
		if width < 0 {
			width = 0 // NewEngine resolves <= 0 to GOMAXPROCS
		}
		eng = bpmax.NewEngine(width)
		defer eng.Close()
		options = append(options, bpmax.WithEngine(eng))
	}
	var pl *bpmax.Pool
	if *pool {
		pl = bpmax.NewPool()
		options = append(options, bpmax.WithPool(pl))
	}
	var cache *bpmax.Cache
	if *cacheFlag != "" {
		budget, err := parseBytes(*cacheFlag)
		if err != nil {
			return fmt.Errorf("-cache: %w", err)
		}
		cache = bpmax.NewCache(bpmax.CacheConfig{MaxBytes: budget})
		options = append(options, bpmax.WithCache(cache))
	}
	var gate *bpmax.Admission
	if *admit > 0 {
		gate = bpmax.NewAdmission(bpmax.AdmissionConfig{MaxConcurrent: *admit, MaxQueue: *admitQueue})
		options = append(options, bpmax.WithAdmission(gate))
	} else if *admitQueue > 0 {
		return fmt.Errorf("-admit-queue requires -admit")
	}

	var mtr *bpmax.Metrics
	if *metricsJSON != "" || *pprofAddr != "" {
		mtr = bpmax.NewMetrics()
		options = append(options, bpmax.WithMetrics(mtr))
	}
	// snapshot assembles the full observability document: cumulative fold
	// totals plus engine/pool utilization when those components are on.
	snapshot := func() bpmax.MetricsSnapshot {
		s := mtr.Snapshot()
		if eng != nil {
			es := eng.Stats()
			s.Engine = &es
		}
		if pl != nil {
			ps := pl.Stats()
			s.Pool = &ps
		}
		if cache != nil {
			cs := cache.Stats()
			s.Cache = &cs
		}
		if gate != nil {
			as := gate.Stats()
			s.Admission = &as
		}
		if *failpoints != "" {
			fst := fault.Snapshot()
			s.Faults = &fst
		}
		return s
	}
	if *pprofAddr != "" {
		publishExpvar(snapshot)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "bpmax: pprof server:", err)
			}
		}()
	}
	// writeMetrics emits the -metrics-json document; fold is the single
	// fold's record (nil in batch mode, where only totals apply).
	writeMetrics := func(fold *bpmax.FoldSnapshot) error {
		if *metricsJSON == "" {
			return nil
		}
		doc := struct {
			Fold   *bpmax.FoldSnapshot   `json:"fold,omitempty"`
			Totals bpmax.MetricsSnapshot `json:"totals"`
		}{fold, snapshot()}
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if *metricsJSON == "-" {
			_, err = os.Stdout.Write(raw)
			return err
		}
		return os.WriteFile(*metricsJSON, raw, 0o644)
	}

	var s1, s2, name1, name2 string
	if *fasta != "" {
		recs, err := bpmax.LoadFasta(*fasta, *resolve)
		if err != nil {
			return err
		}
		if *batch {
			if err := runBatch(ctx, recs, *workers, options); err != nil {
				return err
			}
			return writeMetrics(nil)
		}
		if len(recs) < 2 {
			return fmt.Errorf("FASTA file %s has %d records, need 2", *fasta, len(recs))
		}
		s1, s2 = recs[0].Seq, recs[1].Seq
		name1, name2 = recs[0].Name, recs[1].Name
	} else {
		if fs.NArg() != 2 {
			return fmt.Errorf("need exactly two sequences (or -fasta); got %d args", fs.NArg())
		}
		s1, s2 = fs.Arg(0), fs.Arg(1)
		name1, name2 = "seq1", "seq2"
	}

	if *window > 0 {
		res, err := bpmax.ScanWindowedContext(ctx, s1, s2, *window, *window, options...)
		if err != nil {
			return describeFoldErr(err)
		}
		fmt.Printf("best windowed interaction score: %g\n", res.Best)
		fmt.Printf("at %s[%d..%d] x %s[%d..%d]\n", name1, res.I1, res.J1, name2, res.I2, res.J2)
		if *stats {
			fmt.Printf("scan time: %v  rate: %.1f Mcells/s  banded table: %.1f MB\n",
				res.Elapsed, cellRate(res.TableBytes/4, res.Elapsed), float64(res.TableBytes)/(1<<20))
		}
		if mtr != nil {
			fold := res.Metrics.Snapshot()
			return writeMetrics(&fold)
		}
		return nil
	}

	res, err := bpmax.FoldContext(ctx, s1, s2, options...)
	if err != nil {
		return describeFoldErr(err)
	}
	if res.Degradation != bpmax.DegradeNone {
		fmt.Printf("note: fold degraded to the %s layout to fit the memory limit\n", res.Degradation)
	}
	if res.Degradation == bpmax.DegradeWindowed {
		w := res.Window
		fmt.Printf("best windowed interaction score: %g\n", w.Best)
		fmt.Printf("at %s[%d..%d] x %s[%d..%d]\n", name1, w.I1, w.J1, name2, w.I2, w.J2)
	} else {
		fmt.Printf("interaction score: %g  (%s: %d nt, %s: %d nt)\n", res.Score, name1, res.N1, name2, res.N2)
	}
	if *structure {
		st := res.Structure()
		fmt.Printf("%s  %s\n", st.Bracket1, name1)
		fmt.Printf("%s  %s\n", st.Bracket2, name2)
		fmt.Printf("intramolecular pairs: %d + %d, intermolecular bonds: %d\n",
			len(st.Intra1), len(st.Intra2), len(st.Inter))
	}
	if *draw {
		fmt.Print(res.Structure().Draw(s1norm(s1), s1norm(s2)))
	}
	if *ensemble {
		for i, s := range []string{s1, s2} {
			ens, err := bpmax.SingleEnsemble(s, 1.0)
			if err != nil {
				return err
			}
			fmt.Printf("strand %d ensemble: %.0f structures, %.0f co-optimal, logZ(kT=1) = %.2f\n",
				i+1, ens.Structures, ens.Cooptimal, ens.LogZ)
		}
	}
	if *stats {
		if res.Degradation == bpmax.DegradeWindowed {
			fmt.Printf("scan time: %v  rate: %.1f Mcells/s  banded table: %.1f MB\n",
				res.Elapsed, cellRate(res.TableBytes/4, res.Elapsed), float64(res.TableBytes)/(1<<20))
		} else {
			fmt.Printf("fill time: %v  rate: %.2f GFLOPS  table: %.1f MB\n",
				res.Elapsed, res.GFLOPS(), float64(res.TableBytes)/(1<<20))
		}
	}
	if mtr != nil {
		fold := res.Metrics.Snapshot()
		return writeMetrics(&fold)
	}
	return nil
}

// expvarOnce guards the process-wide expvar registration: run may be
// invoked more than once (tests), Publish panics on duplicates.
var expvarOnce sync.Once

// publishExpvar exposes the observability snapshot at /debug/vars under
// the "bpmax" key, next to the standard memstats.
func publishExpvar(snapshot func() bpmax.MetricsSnapshot) {
	expvarOnce.Do(func() {
		expvar.Publish("bpmax", expvar.Func(func() any { return snapshot() }))
	})
}

// describeFoldErr rewrites the robustness-layer errors into actionable CLI
// messages; anything else passes through.
func describeFoldErr(err error) error {
	var mle *bpmax.MemoryLimitError
	var ae *bpmax.AdmissionError
	switch {
	case errors.As(err, &ae):
		if errors.Is(err, bpmax.ErrQueueFull) {
			return fmt.Errorf("%w; raise -admit or -admit-queue", err)
		}
		return fmt.Errorf("%w; raise -timeout or -admit", err)
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("fold exceeded -timeout and was cancelled (%w)", err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("fold interrupted (%w)", err)
	case errors.As(err, &mle):
		return fmt.Errorf("%w; raise -mem-limit or enable -degrade-window", err)
	}
	return err
}

// cellRate converts a cell count and duration to millions of cells/second.
func cellRate(cells int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(cells) / d.Seconds() / 1e6
}

// parseBytes parses a human byte size: a plain integer is bytes, and the
// suffixes KB/MB/GB/TB (binary, case-insensitive, optionally just K/M/G/T)
// scale by 1024 steps. Empty means 0 (unlimited).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	num := s
	for _, u := range []struct {
		suffix string
		scale  int64
	}{
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30}, {"TB", 1 << 40},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30}, {"T", 1 << 40},
		{"B", 1},
	} {
		if strings.HasSuffix(s, u.suffix) {
			mult = u.scale
			num = strings.TrimSpace(strings.TrimSuffix(s, u.suffix))
			break
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return int64(v * float64(mult)), nil
}

// buildOpts assembles the fold options shared by the single and batch
// paths.
func buildOpts(variant, substrate string, workers, tileI, tileK, tileJ int, unit, packed bool, memLimit int64, degradeWindow int) ([]bpmax.Option, error) {
	if substrate == "4r" {
		substrate = string(bpmax.SubstrateFourRussians)
	}
	out := []bpmax.Option{
		bpmax.WithVariant(bpmax.Variant(variant)),
		bpmax.WithWorkers(workers),
		bpmax.WithTiles(tileI, tileK, tileJ),
		// Unknown -substrate values surface as a fold-time error.
		bpmax.WithSubstrateAlgorithm(bpmax.SubstrateAlgorithm(substrate)),
	}
	if unit {
		out = append(out, bpmax.WithWeights(bpmax.Weights{Unit: true}))
	}
	if packed {
		out = append(out, bpmax.WithPackedMemory())
	}
	if memLimit > 0 {
		out = append(out, bpmax.WithMemoryLimit(memLimit))
	}
	if degradeWindow > 0 {
		if memLimit <= 0 {
			return nil, fmt.Errorf("-degrade-window requires -mem-limit")
		}
		out = append(out, bpmax.WithDegradeToWindowed(degradeWindow, degradeWindow))
	}
	return out, nil
}

// runBatch folds consecutive FASTA pairs and prints them ranked by
// interaction gain, with per-item failure and degradation status.
func runBatch(ctx context.Context, recs []bpmax.FastaRecord, workers int, options []bpmax.Option) error {
	items, err := bpmax.PairsFromFasta(recs)
	if err != nil {
		return err
	}
	results := bpmax.FoldBatchContext(ctx, items, workers, options...)
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "bpmax: skipping %v\n", r.Err)
		}
	}
	ranked := bpmax.RankByGain(results)
	fmt.Printf("%-40s %10s %10s  %s\n", "pair", "score", "gain", "status")
	for _, r := range ranked {
		status := "ok"
		if r.Degradation != bpmax.DegradeNone {
			status = "degraded:" + r.Degradation.String()
		}
		fmt.Printf("%-40s %10.1f %10.1f  %s\n", r.Name, r.Result.Score, r.Gain, status)
	}
	if failed > 0 {
		fmt.Printf("%d of %d pairs failed (timeouts/cancellations/errors reported above)\n", failed, len(results))
	}
	return nil
}

// s1norm upper-cases and T->U normalizes a raw argument for display next
// to 0-based structure coordinates.
func s1norm(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z':
			out[i] = c - 'a' + 'A'
		}
		if out[i] == 'T' {
			out[i] = 'U'
		}
	}
	return string(out)
}
