// Command bpmax folds two RNA sequences with the BPMax RNA-RNA interaction
// algorithm and prints the optimal score and one optimal joint structure.
//
// Usage:
//
//	bpmax [flags] SEQ1 SEQ2
//	bpmax [flags] -fasta interactions.fa     # first two records
//
// Examples:
//
//	bpmax GGGAAACCC GGGUUUCCC
//	bpmax -variant base -workers 1 GGGAAACCC GGGUUUCCC
//	bpmax -window 64 longseq1.txt-content longseq2.txt-content
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/bpmax-go/bpmax"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bpmax:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bpmax", flag.ContinueOnError)
	variant := fs.String("variant", string(bpmax.HybridTiled),
		"schedule: base, coarse, fine, hybrid, hybrid-tiled")
	workers := fs.Int("workers", 0, "parallel workers (0 = all CPUs)")
	tileI := fs.Int("tile-i2", 0, "i2 tile size (0 = default 64)")
	tileK := fs.Int("tile-k2", 0, "k2 tile size (0 = default 16)")
	tileJ := fs.Int("tile-j2", 0, "j2 tile size (0 = untiled/streaming)")
	window := fs.Int("window", 0, "windowed scan with this span for both sequences (0 = full fold)")
	unit := fs.Bool("unit", false, "unweighted pair counting instead of GC=3/AU=2/GU=1")
	packed := fs.Bool("packed", false, "use the packed (quarter-space) memory map")
	fasta := fs.String("fasta", "", "read the first two records of this FASTA file instead of arguments")
	resolve := fs.Int64("resolve", 0, "accept IUPAC ambiguity codes in FASTA, resolving them randomly with this seed (0 = strict)")
	batch := fs.Bool("batch", false, "treat the FASTA file as consecutive pairs; fold all and rank by interaction gain")
	structure := fs.Bool("structure", true, "print an optimal joint structure")
	draw := fs.Bool("draw", false, "draw the joint structure as an ASCII duplex diagram")
	ensemble := fs.Bool("ensemble", false, "print per-strand ensemble statistics (structure counts, logZ)")
	stats := fs.Bool("stats", false, "print timing, GFLOPS and table size")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var s1, s2, name1, name2 string
	if *fasta != "" {
		recs, err := bpmax.LoadFasta(*fasta, *resolve)
		if err != nil {
			return err
		}
		if *batch {
			return runBatch(recs, *workers, opts(*variant, *workers, *tileI, *tileK, *tileJ, *unit, *packed))
		}
		if len(recs) < 2 {
			return fmt.Errorf("FASTA file %s has %d records, need 2", *fasta, len(recs))
		}
		s1, s2 = recs[0].Seq, recs[1].Seq
		name1, name2 = recs[0].Name, recs[1].Name
	} else {
		if fs.NArg() != 2 {
			return fmt.Errorf("need exactly two sequences (or -fasta); got %d args", fs.NArg())
		}
		s1, s2 = fs.Arg(0), fs.Arg(1)
		name1, name2 = "seq1", "seq2"
	}

	opts := opts(*variant, *workers, *tileI, *tileK, *tileJ, *unit, *packed)

	if *window > 0 {
		res, err := bpmax.ScanWindowed(s1, s2, *window, *window, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("best windowed interaction score: %g\n", res.Best)
		fmt.Printf("at %s[%d..%d] x %s[%d..%d]\n", name1, res.I1, res.J1, name2, res.I2, res.J2)
		if *stats {
			fmt.Printf("banded table: %.1f MB\n", float64(res.TableBytes)/(1<<20))
		}
		return nil
	}

	res, err := bpmax.Fold(s1, s2, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("interaction score: %g  (%s: %d nt, %s: %d nt)\n", res.Score, name1, res.N1, name2, res.N2)
	if *structure {
		st := res.Structure()
		fmt.Printf("%s  %s\n", st.Bracket1, name1)
		fmt.Printf("%s  %s\n", st.Bracket2, name2)
		fmt.Printf("intramolecular pairs: %d + %d, intermolecular bonds: %d\n",
			len(st.Intra1), len(st.Intra2), len(st.Inter))
	}
	if *draw {
		fmt.Print(res.Structure().Draw(s1norm(s1), s1norm(s2)))
	}
	if *ensemble {
		for i, s := range []string{s1, s2} {
			ens, err := bpmax.SingleEnsemble(s, 1.0)
			if err != nil {
				return err
			}
			fmt.Printf("strand %d ensemble: %.0f structures, %.0f co-optimal, logZ(kT=1) = %.2f\n",
				i+1, ens.Structures, ens.Cooptimal, ens.LogZ)
		}
	}
	if *stats {
		fmt.Printf("fill time: %v  rate: %.2f GFLOPS  table: %.1f MB\n",
			res.Elapsed, res.GFLOPS(), float64(res.TableBytes)/(1<<20))
	}
	return nil
}

// opts assembles the fold options shared by the single and batch paths.
func opts(variant string, workers, tileI, tileK, tileJ int, unit, packed bool) []bpmax.Option {
	out := []bpmax.Option{
		bpmax.WithVariant(bpmax.Variant(variant)),
		bpmax.WithWorkers(workers),
		bpmax.WithTiles(tileI, tileK, tileJ),
	}
	if unit {
		out = append(out, bpmax.WithWeights(bpmax.Weights{Unit: true}))
	}
	if packed {
		out = append(out, bpmax.WithPackedMemory())
	}
	return out
}

// runBatch folds consecutive FASTA pairs and prints them ranked by
// interaction gain.
func runBatch(recs []bpmax.FastaRecord, workers int, options []bpmax.Option) error {
	items, err := bpmax.PairsFromFasta(recs)
	if err != nil {
		return err
	}
	results := bpmax.FoldBatch(items, workers, options...)
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "bpmax: skipping %v\n", r.Err)
		}
	}
	ranked := bpmax.RankByGain(results)
	fmt.Printf("%-40s %10s %10s\n", "pair", "score", "gain")
	for _, r := range ranked {
		fmt.Printf("%-40s %10.1f %10.1f\n", r.Name, r.Result.Score, r.Gain)
	}
	return nil
}

// s1norm upper-cases and T->U normalizes a raw argument for display next
// to 0-based structure coordinates.
func s1norm(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z':
			out[i] = c - 'a' + 'A'
		}
		if out[i] == 'T' {
			out[i] = 'U'
		}
	}
	return string(out)
}
