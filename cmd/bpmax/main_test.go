package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunWithArgs(t *testing.T) {
	if err := run([]string{"GGG", "CCC"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAllVariants(t *testing.T) {
	for _, v := range []string{"base", "coarse", "fine", "hybrid", "hybrid-tiled"} {
		if err := run([]string{"-variant", v, "GGAUCC", "GGAUCC"}); err != nil {
			t.Errorf("variant %s: %v", v, err)
		}
	}
}

func TestRunWithTuning(t *testing.T) {
	err := run([]string{"-workers", "2", "-tile-i2", "4", "-tile-k2", "2", "-unit", "-packed", "-stats", "GGG", "CCC"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWindowed(t *testing.T) {
	if err := run([]string{"-window", "4", "-stats", "GGGAAACCC", "GGGUUUCCC"}); err != nil {
		t.Fatalf("windowed run: %v", err)
	}
}

func TestRunDrawAndEnsemble(t *testing.T) {
	if err := run([]string{"-draw", "-ensemble", "GGGAAACCC", "gggtttccc"}); err != nil {
		t.Fatalf("run -draw -ensemble: %v", err)
	}
}

func TestRunFasta(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pair.fa")
	if err := os.WriteFile(path, []byte(">a\nGGG\n>b\nCCC\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fasta", path}); err != nil {
		t.Fatalf("fasta run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                             // no sequences
		{"GGG"},                        // one sequence
		{"GGG", "CCC", "AAA"},          // three sequences
		{"GGX", "CCC"},                 // invalid base
		{"-variant", "warp", "A", "C"}, // unknown variant
		{"-fasta", "/nonexistent/x.fa"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

func TestRunFastaTooFewRecords(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "one.fa")
	if err := os.WriteFile(path, []byte(">a\nGGG\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fasta", path}); err == nil {
		t.Error("expected error for single-record FASTA")
	}
}

func TestRunFastaResolving(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "amb.fa")
	if err := os.WriteFile(path, []byte(">a\nGGNN\n>b\nCCNN\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fasta", path}); err == nil {
		t.Error("strict mode accepted N")
	}
	if err := run([]string{"-fasta", path, "-resolve", "7"}); err != nil {
		t.Fatalf("resolving run: %v", err)
	}
}

func TestRunBatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pairs.fa")
	fa := ">s1\nGGGG\n>t1\nCCCC\n>s2\nAAAA\n>t2\nAAAA\n>s3\nGG\n>t3\nNN\n"
	if err := os.WriteFile(path, []byte(fa), 0o644); err != nil {
		t.Fatal(err)
	}
	// Strict parse rejects the N record up front...
	if err := run([]string{"-fasta", path, "-batch"}); err == nil {
		t.Error("strict batch accepted N")
	}
	// ...while -resolve folds all three pairs.
	if err := run([]string{"-fasta", path, "-batch", "-resolve", "3"}); err != nil {
		t.Fatalf("batch run: %v", err)
	}
	// Odd record count errors.
	odd := filepath.Join(dir, "odd.fa")
	if err := os.WriteFile(odd, []byte(">a\nGG\n>b\nCC\n>c\nAA\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fasta", odd, "-batch"}); err == nil {
		t.Error("odd batch accepted")
	}
}
