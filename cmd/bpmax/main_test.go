package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/bpmax-go/bpmax"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	runErr := fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestRunWithArgs(t *testing.T) {
	if err := run(t.Context(), []string{"GGG", "CCC"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAllVariants(t *testing.T) {
	for _, v := range []string{"base", "coarse", "fine", "hybrid", "hybrid-tiled"} {
		if err := run(t.Context(), []string{"-variant", v, "GGAUCC", "GGAUCC"}); err != nil {
			t.Errorf("variant %s: %v", v, err)
		}
	}
}

func TestRunWithTuning(t *testing.T) {
	err := run(t.Context(), []string{"-workers", "2", "-tile-i2", "4", "-tile-k2", "2", "-unit", "-packed", "-stats", "GGG", "CCC"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWindowed(t *testing.T) {
	if err := run(t.Context(), []string{"-window", "4", "-stats", "GGGAAACCC", "GGGUUUCCC"}); err != nil {
		t.Fatalf("windowed run: %v", err)
	}
}

func TestRunDrawAndEnsemble(t *testing.T) {
	if err := run(t.Context(), []string{"-draw", "-ensemble", "GGGAAACCC", "gggtttccc"}); err != nil {
		t.Fatalf("run -draw -ensemble: %v", err)
	}
}

func TestRunFasta(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pair.fa")
	if err := os.WriteFile(path, []byte(">a\nGGG\n>b\nCCC\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(t.Context(), []string{"-fasta", path}); err != nil {
		t.Fatalf("fasta run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                             // no sequences
		{"GGG"},                        // one sequence
		{"GGG", "CCC", "AAA"},          // three sequences
		{"GGX", "CCC"},                 // invalid base
		{"-variant", "warp", "A", "C"}, // unknown variant
		{"-fasta", "/nonexistent/x.fa"},
	}
	for _, args := range cases {
		if err := run(t.Context(), args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

func TestRunFastaTooFewRecords(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "one.fa")
	if err := os.WriteFile(path, []byte(">a\nGGG\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(t.Context(), []string{"-fasta", path}); err == nil {
		t.Error("expected error for single-record FASTA")
	}
}

func TestRunFastaResolving(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "amb.fa")
	if err := os.WriteFile(path, []byte(">a\nGGNN\n>b\nCCNN\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(t.Context(), []string{"-fasta", path}); err == nil {
		t.Error("strict mode accepted N")
	}
	if err := run(t.Context(), []string{"-fasta", path, "-resolve", "7"}); err != nil {
		t.Fatalf("resolving run: %v", err)
	}
}

func TestRunTimeoutExpires(t *testing.T) {
	// A 1 ns deadline is already expired at the first cooperative check, so
	// this is deterministic regardless of machine speed.
	err := run(t.Context(), []string{"-timeout", "1ns", "GGGAAACCC", "GGGUUUCCC"})
	if err == nil || !strings.Contains(err.Error(), "-timeout") {
		t.Errorf("err = %v, want the -timeout explanation", err)
	}
}

func TestRunMemLimit(t *testing.T) {
	// Over budget with no fallback: the actionable message.
	err := run(t.Context(), []string{"-mem-limit", "1", "GGGAAACCC", "GGGUUUCCC"})
	if err == nil || !strings.Contains(err.Error(), "-degrade-window") {
		t.Errorf("err = %v, want the memory-limit explanation", err)
	}
	// Unparseable size.
	if err := run(t.Context(), []string{"-mem-limit", "lots", "GGG", "CCC"}); err == nil {
		t.Error("invalid -mem-limit accepted")
	}
	// Generous limit: folds normally.
	if err := run(t.Context(), []string{"-mem-limit", "1GB", "GGG", "CCC"}); err != nil {
		t.Errorf("generous limit failed: %v", err)
	}
}

func TestRunDegradeWindow(t *testing.T) {
	// -degrade-window without -mem-limit is a usage error.
	if err := run(t.Context(), []string{"-degrade-window", "4", "GGG", "CCC"}); err == nil {
		t.Error("-degrade-window without -mem-limit accepted")
	}
	// A limit that only the banded table fits: the fold degrades and says so.
	s1, s2 := "GGGAAACCCGGGAAACCC", "GGGUUUCCCGGGUUUCCC"
	limit := fmt.Sprint(bpmax.EstimateWindowedBytes(len(s1), len(s2), 4, 4))
	out, err := captureStdout(t, func() error {
		return run(context.Background(), []string{"-mem-limit", limit, "-degrade-window", "4", "-stats", s1, s2})
	})
	if err != nil {
		t.Fatalf("degraded run: %v", err)
	}
	for _, want := range []string{"degraded to the windowed layout", "best windowed interaction score", "scan time"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWindowStats(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run(context.Background(), []string{"-window", "4", "-stats", "GGGAAACCC", "GGGUUUCCC"})
	})
	if err != nil {
		t.Fatalf("windowed run: %v", err)
	}
	if !strings.Contains(out, "scan time") || !strings.Contains(out, "Mcells/s") {
		t.Errorf("-window -stats output missing timing:\n%s", out)
	}
}

func TestRunMetricsJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := run(t.Context(), []string{"-metrics-json", path, "GGGAAACCC", "GGGUUUCCC"}); err != nil {
		t.Fatalf("run -metrics-json: %v", err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	var doc struct {
		Fold   *bpmax.FoldSnapshot   `json:"fold"`
		Totals bpmax.MetricsSnapshot `json:"totals"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if doc.Fold == nil || doc.Fold.Cells == 0 || doc.Fold.Schedule == "" {
		t.Errorf("fold snapshot incomplete: %+v", doc.Fold)
	}
	if doc.Totals.Folds != 1 || doc.Totals.Errors != 0 {
		t.Errorf("totals = %+v, want one clean fold", doc.Totals)
	}
	if _, ok := doc.Fold.Phases["substrate"]; !ok {
		t.Errorf("fold phases missing substrate: %v", doc.Fold.Phases)
	}
}

func TestRunMetricsJSONStdout(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run(context.Background(), []string{"-metrics-json", "-", "GGG", "CCC"})
	})
	if err != nil {
		t.Fatalf("run -metrics-json -: %v", err)
	}
	if !strings.Contains(out, `"totals"`) || !strings.Contains(out, `"schedule"`) {
		t.Errorf("stdout metrics missing fields:\n%s", out)
	}
}

func TestRunMetricsJSONWindowed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "win.json")
	if err := run(t.Context(), []string{"-window", "4", "-metrics-json", path, "GGGAAACCC", "GGGUUUCCC"}); err != nil {
		t.Fatalf("windowed -metrics-json: %v", err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "window-accumulate") {
		t.Errorf("windowed metrics missing window phases:\n%s", blob)
	}
}

func TestRunBatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pairs.fa")
	fa := ">s1\nGGGG\n>t1\nCCCC\n>s2\nAAAA\n>t2\nAAAA\n>s3\nGG\n>t3\nNN\n"
	if err := os.WriteFile(path, []byte(fa), 0o644); err != nil {
		t.Fatal(err)
	}
	// Strict parse rejects the N record up front...
	if err := run(t.Context(), []string{"-fasta", path, "-batch"}); err == nil {
		t.Error("strict batch accepted N")
	}
	// ...while -resolve folds all three pairs.
	if err := run(t.Context(), []string{"-fasta", path, "-batch", "-resolve", "3"}); err != nil {
		t.Fatalf("batch run: %v", err)
	}
	// Odd record count errors.
	odd := filepath.Join(dir, "odd.fa")
	if err := os.WriteFile(odd, []byte(">a\nGG\n>b\nCC\n>c\nAA\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(t.Context(), []string{"-fasta", odd, "-batch"}); err == nil {
		t.Error("odd batch accepted")
	}
}

func TestRunCachedAndGated(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run(t.Context(), []string{"-cache", "0", "-admit", "2", "-metrics-json", "-", "GGGAAACCC", "GGGUUUCCC"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var doc struct {
		Totals bpmax.MetricsSnapshot `json:"totals"`
	}
	jsonStart := strings.Index(out, "{")
	if jsonStart < 0 {
		t.Fatalf("no JSON in output:\n%s", out)
	}
	if err := json.Unmarshal([]byte(out[jsonStart:]), &doc); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, out)
	}
	if doc.Totals.Cache == nil {
		t.Error("metrics document missing the cache section")
	}
	if doc.Totals.Admission == nil {
		t.Error("metrics document missing the admission section")
	} else if doc.Totals.Admission.Admitted == 0 {
		t.Error("admission section recorded no admissions")
	}
}

func TestRunCacheAdmitFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-cache", "lots", "GGG", "CCC"},    // unparsable size
		{"-admit-queue", "4", "GGG", "CCC"}, // queue without gate
	}
	for _, args := range cases {
		if err := run(t.Context(), args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}
