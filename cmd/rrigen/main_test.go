package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/bpmax-go/bpmax/internal/seqio"
)

func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "out.fa")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	runErr := run(args, f)
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestRandomKind(t *testing.T) {
	out, err := capture(t, []string{"-n", "3", "-len", "50", "-seed", "9"})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := seqio.ReadString(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	for _, r := range recs {
		if r.Seq.Len() != 50 {
			t.Errorf("record %q length %d", r.Name, r.Seq.Len())
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, err := capture(t, []string{"-n", "2", "-len", "30", "-seed", "5"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := capture(t, []string{"-n", "2", "-len", "30", "-seed", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed produced different output")
	}
}

func TestGCKind(t *testing.T) {
	out, err := capture(t, []string{"-kind", "gc", "-gc", "0.9", "-n", "1", "-len", "5000"})
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := seqio.ReadString(out)
	if gc := recs[0].Seq.GCContent(); gc < 0.85 {
		t.Errorf("GC content %v, want ~0.9", gc)
	}
}

func TestHairpinKind(t *testing.T) {
	out, err := capture(t, []string{"-kind", "hairpin", "-n", "1", "-len", "24", "-loop", "4"})
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := seqio.ReadString(out)
	s := recs[0].Seq
	// Stem = 10, loop = 4.
	for i := 0; i < 10; i++ {
		if s.At(i).Complement() != s.At(s.Len()-1-i) {
			t.Fatalf("stem position %d not complementary", i)
		}
	}
}

func TestPairKindPlantsSite(t *testing.T) {
	out, err := capture(t, []string{"-kind", "pair", "-n", "2", "-len", "40", "-site", "8"})
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := seqio.ReadString(out)
	if len(recs) != 4 {
		t.Fatalf("pair kind emitted %d records, want 4", len(recs))
	}
	if !strings.Contains(recs[0].Name, "site@") {
		t.Errorf("name missing site annotation: %q", recs[0].Name)
	}
}

func TestErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-kind", "bogus"},
		{"-len", "0"},
		{"-kind", "hairpin", "-len", "3", "-loop", "4"},
		{"-kind", "pair", "-len", "10", "-site", "10"},
	} {
		if _, err := capture(t, args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}
