// Command rrigen generates synthetic RNA workloads in FASTA format:
// random sequences, GC-biased sequences, hairpins, and interacting pairs
// with planted complementary sites — the inputs the benchmark harness and
// examples consume when real data is unavailable (the repository's
// documented substitution for the paper's sequence inputs).
//
// Usage:
//
//	rrigen -n 10 -len 200 > random.fa
//	rrigen -kind hairpin -n 4 -len 60 -seed 7 > hairpins.fa
//	rrigen -kind pair -len 40 -site 8 > pair.fa
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/bpmax-go/bpmax/internal/rna"
	"github.com/bpmax-go/bpmax/internal/seqio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rrigen:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("rrigen", flag.ContinueOnError)
	kind := fs.String("kind", "random", "workload kind: random, gc, hairpin, pair")
	n := fs.Int("n", 2, "number of records (pairs emit 2 records per pair)")
	length := fs.Int("len", 100, "sequence length")
	gc := fs.Float64("gc", 0.5, "GC content for -kind gc")
	loop := fs.Int("loop", 4, "hairpin loop length for -kind hairpin")
	site := fs.Int("site", 10, "planted complementary site length for -kind pair")
	seed := fs.Int64("seed", 1, "random seed")
	width := fs.Int("width", 60, "FASTA line width")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *length < 1 || *n < 1 {
		return fmt.Errorf("need positive -n and -len")
	}
	rng := rand.New(rand.NewSource(*seed))
	var recs []seqio.Record
	switch *kind {
	case "random":
		for i := 0; i < *n; i++ {
			recs = append(recs, seqio.Record{
				Name: fmt.Sprintf("random_%03d len=%d seed=%d", i, *length, *seed),
				Seq:  rna.Random(rng, *length),
			})
		}
	case "gc":
		for i := 0; i < *n; i++ {
			recs = append(recs, seqio.Record{
				Name: fmt.Sprintf("gc%.2f_%03d len=%d", *gc, i, *length),
				Seq:  rna.RandomGC(rng, *length, *gc),
			})
		}
	case "hairpin":
		stem := (*length - *loop) / 2
		if stem < 1 {
			return fmt.Errorf("-len %d too short for a hairpin with loop %d", *length, *loop)
		}
		for i := 0; i < *n; i++ {
			recs = append(recs, seqio.Record{
				Name: fmt.Sprintf("hairpin_%03d stem=%d loop=%d", i, stem, *loop),
				Seq:  rna.Hairpin(rng, stem, *loop),
			})
		}
	case "pair":
		if *site >= *length {
			return fmt.Errorf("-site %d must be shorter than -len %d", *site, *length)
		}
		for i := 0; i < *n; i++ {
			a := rna.Random(rng, *length)
			// Plant the reverse complement of a random window of a into b.
			start := rng.Intn(*length - *site + 1)
			siteSeq := a.Sub(start, start+*site-1).ReverseComplement()
			bBases := rna.Random(rng, *length).Bases()
			bStart := rng.Intn(*length - *site + 1)
			copy(bBases[bStart:], siteSeq.Bases())
			b := rna.FromBases(bBases)
			recs = append(recs,
				seqio.Record{Name: fmt.Sprintf("pair_%03d_a site@%d+%d", i, start, *site), Seq: a},
				seqio.Record{Name: fmt.Sprintf("pair_%03d_b site@%d+%d", i, bStart, *site), Seq: b},
			)
		}
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	return seqio.Write(out, recs, *width)
}
