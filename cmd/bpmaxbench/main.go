// Command bpmaxbench regenerates the paper's tables and figures: one
// experiment per artifact of the evaluation section (see DESIGN.md's
// per-experiment index).
//
// Usage:
//
//	bpmaxbench                      # run everything at the default scale
//	bpmaxbench -exp fig13           # one experiment
//	bpmaxbench -exp ext-engine,ext-metrics  # several, comma-separated
//	bpmaxbench -scale medium -csv   # bigger inputs, CSV output
//	bpmaxbench -chart               # ASCII bar charts
//	bpmaxbench -out results/medium  # also write <id>.txt / <id>.csv files
//	bpmaxbench -json BENCH.json     # machine-readable artifact for benchgate
//	bpmaxbench -list                # list experiment IDs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"github.com/bpmax-go/bpmax"
	"github.com/bpmax-go/bpmax/internal/harness"
	"github.com/bpmax-go/bpmax/internal/metrics"
)

// benchSchema versions the -json artifact; bump it when the shape changes
// so cmd/benchgate can keep reading old baselines.
const benchSchema = "bpmax-bench/v1"

// benchArtifact is the -json document: run provenance, the regenerated
// tables, and (when an experiment ran observed folds) the cumulative
// metrics snapshot. cmd/benchgate consumes this to gate regressions.
type benchArtifact struct {
	Schema  string                 `json:"schema"`
	Go      string                 `json:"go"`
	GOOS    string                 `json:"goos"`
	GOARCH  string                 `json:"goarch"`
	CPUs    int                    `json:"cpus"`
	Scale   string                 `json:"scale"`
	Repeats int                    `json:"repeats"`
	Tables  []*harness.Table       `json:"tables"`
	Metrics *bpmax.MetricsSnapshot `json:"metrics,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bpmaxbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bpmaxbench", flag.ContinueOnError)
	exp := fs.String("exp", "", "experiment IDs, comma-separated (empty = all); see -list")
	scale := fs.String("scale", "small", "workload scale: small, medium, full")
	workers := fs.Int("workers", 0, "parallel workers (0 = all CPUs)")
	seed := fs.Int64("seed", 42, "workload random seed")
	repeats := fs.Int("repeats", 1, "timing repeats (fastest wins)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	chart := fs.Bool("chart", false, "render ASCII bar charts instead of tables")
	outDir := fs.String("out", "", "also write <id>.txt and <id>.csv into this directory")
	jsonFile := fs.String("json", "", "write the run's artifact (schema "+benchSchema+") to this file")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-12s %-55s %s\n", e.ID, e.Title, e.PaperRef)
		}
		return nil
	}

	cfg := harness.RunConfig{
		Scale:   harness.Scale(*scale),
		Workers: *workers,
		Seed:    *seed,
		Repeats: *repeats,
	}
	switch cfg.Scale {
	case harness.ScaleSmall, harness.ScaleMedium, harness.ScaleFull:
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	var collect *metrics.Metrics
	if *jsonFile != "" {
		collect = &metrics.Metrics{}
		cfg.Collect = collect
	}

	var exps []harness.Experiment
	if *exp == "" {
		exps = harness.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			e, ok := harness.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			exps = append(exps, e)
		}
		if len(exps) == 0 {
			return fmt.Errorf("no experiment IDs in -exp %q", *exp)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	var tables []*harness.Table
	for _, e := range exps {
		tab := e.Run(cfg)
		tables = append(tables, tab)
		switch {
		case *csv:
			fmt.Printf("# %s,%s\n%s\n", tab.ID, tab.PaperRef, tab.CSV())
		case *chart:
			fmt.Println(tab.Chart(48))
		default:
			fmt.Println(tab.Text())
		}
		if *outDir != "" {
			base := filepath.Join(*outDir, tab.ID)
			if err := os.WriteFile(base+".txt", []byte(tab.Text()), 0o644); err != nil {
				return err
			}
			if err := os.WriteFile(base+".csv", []byte(tab.CSV()), 0o644); err != nil {
				return err
			}
		}
	}
	if *jsonFile != "" {
		art := benchArtifact{
			Schema:  benchSchema,
			Go:      runtime.Version(),
			GOOS:    runtime.GOOS,
			GOARCH:  runtime.GOARCH,
			CPUs:    runtime.NumCPU(),
			Scale:   string(cfg.Scale),
			Repeats: cfg.Repeats,
			Tables:  tables,
		}
		if collect != nil && collect.Folds() > 0 {
			snap := collect.Snapshot()
			art.Metrics = &snap
		}
		blob, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonFile, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
