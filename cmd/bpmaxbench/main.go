// Command bpmaxbench regenerates the paper's tables and figures: one
// experiment per artifact of the evaluation section (see DESIGN.md's
// per-experiment index).
//
// Usage:
//
//	bpmaxbench                      # run everything at the default scale
//	bpmaxbench -exp fig13           # one experiment
//	bpmaxbench -scale medium -csv   # bigger inputs, CSV output
//	bpmaxbench -chart               # ASCII bar charts
//	bpmaxbench -out results/medium  # also write <id>.txt / <id>.csv files
//	bpmaxbench -list                # list experiment IDs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/bpmax-go/bpmax/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bpmaxbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bpmaxbench", flag.ContinueOnError)
	exp := fs.String("exp", "", "experiment ID (empty = all); see -list")
	scale := fs.String("scale", "small", "workload scale: small, medium, full")
	workers := fs.Int("workers", 0, "parallel workers (0 = all CPUs)")
	seed := fs.Int64("seed", 42, "workload random seed")
	repeats := fs.Int("repeats", 1, "timing repeats (fastest wins)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	chart := fs.Bool("chart", false, "render ASCII bar charts instead of tables")
	outDir := fs.String("out", "", "also write <id>.txt and <id>.csv into this directory")
	jsonFile := fs.String("json", "", "write the run's tables as a JSON array to this file (CI artifact)")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-10s %-55s %s\n", e.ID, e.Title, e.PaperRef)
		}
		return nil
	}

	cfg := harness.RunConfig{
		Scale:   harness.Scale(*scale),
		Workers: *workers,
		Seed:    *seed,
		Repeats: *repeats,
	}
	switch cfg.Scale {
	case harness.ScaleSmall, harness.ScaleMedium, harness.ScaleFull:
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	var exps []harness.Experiment
	if *exp == "" {
		exps = harness.All()
	} else {
		e, ok := harness.ByID(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
		exps = []harness.Experiment{e}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	var tables []*harness.Table
	for _, e := range exps {
		tab := e.Run(cfg)
		tables = append(tables, tab)
		switch {
		case *csv:
			fmt.Printf("# %s,%s\n%s\n", tab.ID, tab.PaperRef, tab.CSV())
		case *chart:
			fmt.Println(tab.Chart(48))
		default:
			fmt.Println(tab.Text())
		}
		if *outDir != "" {
			base := filepath.Join(*outDir, tab.ID)
			if err := os.WriteFile(base+".txt", []byte(tab.Text()), 0o644); err != nil {
				return err
			}
			if err := os.WriteFile(base+".csv", []byte(tab.CSV()), 0o644); err != nil {
				return err
			}
		}
	}
	if *jsonFile != "" {
		blob, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonFile, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
