package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run -list: %v", err)
	}
}

func TestRunOneExperiment(t *testing.T) {
	if err := run([]string{"-exp", "table6", "-scale", "small"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-exp", "fig11", "-csv"}); err != nil {
		t.Fatalf("run csv: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Error("expected error for unknown experiment")
	}
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Error("expected error for unknown scale")
	}
}

func TestRunOutDir(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "fig11", "-out", dir}); err != nil {
		t.Fatalf("run -out: %v", err)
	}
	for _, name := range []string{"fig11.txt", "fig11.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}
