package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run -list: %v", err)
	}
}

func TestRunOneExperiment(t *testing.T) {
	if err := run([]string{"-exp", "table6", "-scale", "small"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-exp", "fig11", "-csv"}); err != nil {
		t.Fatalf("run csv: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Error("expected error for unknown experiment")
	}
	if err := run([]string{"-exp", "fig11,bogus"}); err == nil {
		t.Error("expected error for unknown experiment in a list")
	}
	if err := run([]string{"-exp", " , "}); err == nil {
		t.Error("expected error for empty experiment list")
	}
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Error("expected error for unknown scale")
	}
}

func TestRunExperimentList(t *testing.T) {
	if testing.Short() {
		t.Skip("runs timing experiments")
	}
	if err := run([]string{"-exp", "table6, fig11"}); err != nil {
		t.Fatalf("run comma-separated -exp: %v", err)
	}
}

func TestRunJSONArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("runs timing experiments")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-exp", "ext-metrics", "-json", path}); err != nil {
		t.Fatalf("run -json: %v", err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read artifact: %v", err)
	}
	var art benchArtifact
	if err := json.Unmarshal(blob, &art); err != nil {
		t.Fatalf("unmarshal artifact: %v", err)
	}
	if art.Schema != benchSchema {
		t.Errorf("schema = %q, want %q", art.Schema, benchSchema)
	}
	if art.Go == "" || art.GOOS == "" || art.GOARCH == "" || art.CPUs <= 0 {
		t.Errorf("provenance incomplete: %+v", art)
	}
	if len(art.Tables) != 1 || art.Tables[0].ID != "ext-metrics" {
		t.Fatalf("tables = %+v", art.Tables)
	}
	if art.Metrics == nil {
		t.Fatal("artifact missing metrics block (ext-metrics runs observed folds)")
	}
	if art.Metrics.Folds == 0 || art.Metrics.Cells == 0 {
		t.Errorf("metrics block empty: %+v", art.Metrics)
	}
}

func TestRunOutDir(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "fig11", "-out", dir}); err != nil {
		t.Fatalf("run -out: %v", err)
	}
	for _, name := range []string{"fig11.txt", "fig11.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}
