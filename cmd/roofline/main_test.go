package main

import "testing"

func TestRunModel(t *testing.T) {
	if err := run([]string{"-model"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunMicro(t *testing.T) {
	if err := run([]string{"-model=false", "-micro", "-chunk", "1024", "-ms", "1"}); err != nil {
		t.Fatalf("run micro: %v", err)
	}
}
