// Command roofline prints the max-plus roofline model (paper Fig 11) and
// runs the Y = max(a+X, Y) streaming micro-benchmark (Algorithm 3 /
// Fig 12) on the host.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"github.com/bpmax-go/bpmax/internal/roofline"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "roofline:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("roofline", flag.ContinueOnError)
	model := fs.Bool("model", true, "print the roofline model table")
	micro := fs.Bool("micro", false, "run the streaming micro-benchmark")
	chunk := fs.Int("chunk", 4096, "micro-benchmark chunk size in float32 elements")
	ms := fs.Int("ms", 100, "target milliseconds per micro-benchmark point")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *model {
		for _, m := range []roofline.Machine{roofline.E51650v4(), roofline.E2278G(), roofline.Host()} {
			fmt.Printf("%s: %d cores @ %.2f GHz, %d-lane SIMD model\n", m.Name, m.Cores, m.GHz, m.SIMDLanes)
			fmt.Printf("  max-plus peak: %.1f GFLOPS\n", m.MaxPlusPeakGFLOPS())
			for _, level := range roofline.Levels {
				fmt.Printf("  %-4s %8.1f GB/s -> %7.1f GFLOPS at AI=1/6\n",
					level, m.BandwidthGBs(level), m.Attainable(level, roofline.StreamIntensity))
			}
		}
	}

	if *micro {
		cores := runtime.GOMAXPROCS(0)
		iters := roofline.CalibrateIters(*chunk, *ms)
		fmt.Printf("\nmicro-benchmark Y = max(a+X, Y), chunk %d KB, %d iterations/point\n",
			*chunk*4/1024, iters)
		fmt.Printf("%8s  %12s  %12s\n", "threads", "GFLOPS", "unrolled")
		for th := 1; th <= 2*cores; th *= 2 {
			plain := roofline.MeasureStream(th, *chunk, iters, false)
			unrolled := roofline.MeasureStream(th, *chunk, iters, true)
			fmt.Printf("%8d  %12.2f  %12.2f\n", th, plain.GFLOPS, unrolled.GFLOPS)
		}
	}
	return nil
}
