package main

import "testing"

func TestRunDefault(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSchedulesOnly(t *testing.T) {
	if err := run([]string{"-schedules"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunEmitEachNest(t *testing.T) {
	for name := range nests() {
		if err := run([]string{"-emit", name}); err != nil {
			t.Errorf("emit %s: %v", name, err)
		}
	}
}

func TestRunExplore(t *testing.T) {
	if err := run([]string{"-explore"}); err != nil {
		t.Fatalf("run -explore: %v", err)
	}
}

func TestRunEmitUnknown(t *testing.T) {
	if err := run([]string{"-emit", "bogus"}); err == nil {
		t.Error("expected error for unknown nest")
	}
}

func TestRunEmitC(t *testing.T) {
	if err := run([]string{"-emit", "dmp-tiled", "-lang", "c"}); err != nil {
		t.Fatalf("emit c: %v", err)
	}
	if err := run([]string{"-emit", "dmp-tiled", "-lang", "fortran"}); err == nil {
		t.Error("expected error for unknown language")
	}
}

func TestRunAlphabets(t *testing.T) {
	for _, sys := range []string{"bpmax", "dmp", "nussinov"} {
		if err := run([]string{"-ab", sys}); err != nil {
			t.Errorf("-ab %s: %v", sys, err)
		}
	}
	if err := run([]string{"-ab", "bogus"}); err == nil {
		t.Error("expected error for unknown system")
	}
}

func TestRunGenerate(t *testing.T) {
	if err := run([]string{"-generate"}); err != nil {
		t.Fatalf("run -generate: %v", err)
	}
}
