// Command alphagen is the code-generation front end of the AlphaZ
// substitute: it verifies the paper's space-time maps (Tables I-V) against
// the dependences extracted from the BPMax equations, and emits the loop
// nests those schedules generate, with the Table VI line-count metric.
//
// Usage:
//
//	alphagen -schedules      # legality report for every paper schedule
//	alphagen -loc            # Table VI: generated code statistics
//	alphagen -emit dmp-tiled # print one hand-built nest (-lang c for AlphaZ-style C)
//	alphagen -generate       # auto-generate a nest from its schedule
//	alphagen -explore        # classify the 36-candidate schedule space
//	alphagen -ab bpmax       # print the specification in Alpha syntax
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/bpmax-go/bpmax/internal/alpha"
	"github.com/bpmax-go/bpmax/internal/codegen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "alphagen:", err)
		os.Exit(1)
	}
}

func nests() map[string]func() *codegen.Program {
	return map[string]func() *codegen.Program{
		"dmp-base":           codegen.DMPBaseNest,
		"dmp-fine":           codegen.DMPFineNest,
		"dmp-tiled":          func() *codegen.Program { return codegen.DMPTiledNest(64, 16) },
		"bpmax-base":         codegen.BPMaxBaseNest,
		"bpmax-coarse":       codegen.BPMaxCoarseNest,
		"bpmax-fine":         codegen.BPMaxFineNest,
		"bpmax-hybrid":       codegen.BPMaxHybridNest,
		"bpmax-hybrid-tiled": func() *codegen.Program { return codegen.BPMaxHybridTiledNest(64, 16) },
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("alphagen", flag.ContinueOnError)
	schedules := fs.Bool("schedules", false, "check every paper schedule for legality")
	loc := fs.Bool("loc", false, "print generated-code statistics (Table VI)")
	emit := fs.String("emit", "", "emit one generated nest (see -loc for names)")
	explore := fs.Bool("explore", false, "enumerate and classify the double max-plus schedule space")
	ab := fs.String("ab", "", "print a system in Alpha (alphabets) syntax: bpmax, dmp, nussinov")
	generate := fs.Bool("generate", false, "auto-generate the double max-plus nest from its schedule (schedule inversion + Fourier-Motzkin bounds)")
	lang := fs.String("lang", "go", "emit language for -emit: go or c (AlphaZ Listing-2 style)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*schedules && !*loc && *emit == "" && !*explore && *ab == "" && !*generate {
		*schedules, *loc = true, true
	}

	if *generate {
		prog, err := codegen.AutoDMPFineProgram()
		if err != nil {
			return err
		}
		fmt.Println("// Nest generated automatically from the fine schedule:")
		fmt.Println("// statements sequenced after a Fourier-Motzkin non-interleaving proof,")
		fmt.Println("// iterators recovered by exact schedule inversion, bounds by projection,")
		fmt.Println("// then simplified (degenerate loops collapsed, trivial guards dropped).")
		fmt.Print(codegen.Simplify(prog).EmitGo())
	}

	if *ab != "" {
		systems := map[string]func() *alpha.System{
			"bpmax": alpha.BPMaxSystem, "dmp": alpha.DoubleMaxPlusSystem, "nussinov": alpha.NussinovSystem,
		}
		build, ok := systems[*ab]
		if !ok {
			return fmt.Errorf("unknown system %q (bpmax, dmp, nussinov)", *ab)
		}
		fmt.Print(build().Alphabets())
	}

	if *explore {
		fmt.Println("double max-plus schedule space (outer triangle order × inner permutation):")
		fmt.Printf("  %-14s %-12s %-7s %s\n", "outer", "inner", "legal", "vectorizable")
		legal := 0
		for _, c := range alpha.ExploreDMPSchedules() {
			if c.Legal {
				legal++
			}
			fmt.Printf("  %-14s %-12s %-7v %v\n", c.Outer, c.Inner, c.Legal, c.Vectorizable())
		}
		fmt.Printf("  %d legal of 36 candidates; legality depends only on the triangle order,\n", legal)
		fmt.Println("  vectorizability only on the innermost dimension (paper Phase I).")
	}

	if *schedules {
		fmt.Println("BPMax system (Equations 1-3):")
		deps := alpha.ExtractDeps(alpha.BPMaxSystem())
		fmt.Printf("  %d dependences extracted\n", len(deps))
		for _, s := range alpha.BPMaxSchedules() {
			fmt.Printf("  schedule %-8s legal=%v\n", s.Name, s.Legal(deps))
		}
		fine := alpha.FineSchedule()
		fmt.Printf("  fine parallel dim %d: full system valid=%v (paper: invalid for R1/R2)\n",
			alpha.FineParallelLevel+1, fine.ParallelValid(deps, alpha.FineParallelLevel))
		fmt.Println("Double max-plus system (Equation 4):")
		ddeps := alpha.ExtractDeps(alpha.DoubleMaxPlusSystem())
		for _, s := range alpha.DMPSchedules() {
			fmt.Printf("  schedule %-14s legal=%v\n", s.Name, s.Legal(ddeps))
		}
	}

	if *loc {
		fmt.Println("\ngenerated code statistics (Table VI analogue):")
		fmt.Printf("  %-20s %s\n", "implementation", "LOC")
		for _, name := range []string{"dmp-base", "dmp-fine", "dmp-tiled", "bpmax-base", "bpmax-coarse", "bpmax-fine", "bpmax-hybrid", "bpmax-hybrid-tiled"} {
			fmt.Printf("  %-20s %d\n", name, nests()[name]().LOC())
		}
	}

	if *emit != "" {
		build, ok := nests()[*emit]
		if !ok {
			return fmt.Errorf("unknown nest %q", *emit)
		}
		switch *lang {
		case "go":
			fmt.Print(build().EmitGo())
		case "c":
			fmt.Print(build().EmitC())
		default:
			return fmt.Errorf("unknown language %q (go, c)", *lang)
		}
	}
	return nil
}
