// Command benchgate compares a freshly generated bpmaxbench JSON artifact
// against a committed baseline and fails (exit 1) when a gated column
// regresses beyond the threshold. It is the CI benchmark-regression gate:
// ci.sh regenerates BENCH_engine.json and runs
//
//	benchgate -baseline results/BENCH_baseline.json -current BENCH_engine.json
//
// Gated columns are the per-row time ("time/fold", parsed from the
// harness's duration strings) and allocation counts ("allocs/fold").
// Throughput jitter below the threshold (default 15%) passes; allocation
// gates get an extra absolute slack of one alloc so zero-alloc baselines
// do not flap on a single stray allocation.
//
// Rows are matched by experiment ID plus the row's label cells (the cells
// that are not plain numbers or durations — e.g. "engine+pooled", "8x64"),
// so column reordering or added rows do not misalign the comparison. A
// baseline row missing from the current run is a failure: regenerate the
// baseline with `make bench-baseline` when the experiment shape changes
// deliberately.
//
// Both the schema'd object artifact (bpmax-bench/v1) and the legacy bare
// table array are accepted on either side. When the current artifact
// carries a metrics block, benchgate also requires errors == 0 there.
//
// -selftest verifies the gate itself: it inflates the baseline's gated
// cells by 20% and checks the comparison fails, then checks the baseline
// passes against itself. CI runs it before trusting the real comparison.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// table mirrors harness.Table's JSON shape without importing the harness
// (benchgate must also read artifacts produced by older binaries).
type table struct {
	ID     string     `json:"ID"`
	Header []string   `json:"Header"`
	Rows   [][]string `json:"Rows"`
}

// artifact is the object form written by bpmaxbench -json; Tables is all
// benchgate needs, Metrics only for the error gate.
type artifact struct {
	Schema  string  `json:"schema"`
	Tables  []table `json:"tables"`
	Metrics *struct {
		Folds  int64 `json:"folds"`
		Errors int64 `json:"errors"`
	} `json:"metrics"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "", "committed baseline artifact (bpmaxbench -json)")
	currentPath := fs.String("current", "", "freshly generated artifact to gate")
	threshold := fs.Float64("threshold", 15, "allowed regression in percent")
	selftest := fs.Bool("selftest", false, "verify the gate trips on a synthetic 20% regression, then exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baselinePath == "" {
		return fmt.Errorf("-baseline is required")
	}
	base, err := load(*baselinePath)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", *baselinePath, err)
	}

	if *selftest {
		return runSelftest(base, *threshold, stdout)
	}

	if *currentPath == "" {
		return fmt.Errorf("-current is required (or use -selftest)")
	}
	cur, err := load(*currentPath)
	if err != nil {
		return fmt.Errorf("current %s: %w", *currentPath, err)
	}
	failures, checked := compare(base, cur, *threshold)
	if cur.Metrics != nil && cur.Metrics.Errors > 0 {
		failures = append(failures, fmt.Sprintf("metrics block reports %d fold errors", cur.Metrics.Errors))
	}
	for _, f := range failures {
		fmt.Fprintln(stdout, "FAIL:", f)
	}
	if checked == 0 {
		return fmt.Errorf("no gated cells compared — baseline and current share no tables/rows")
	}
	fmt.Fprintf(stdout, "benchgate: %d gated cells compared, %d regressions (threshold %.0f%%)\n",
		checked, len(failures), *threshold)
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark regressions beyond %.0f%%", len(failures), *threshold)
	}
	return nil
}

// load reads either artifact form: the bpmax-bench/v1 object or the
// legacy bare []Table array.
func load(path string) (*artifact, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimSpace(blob)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("empty artifact")
	}
	var art artifact
	if trimmed[0] == '[' {
		if err := json.Unmarshal(trimmed, &art.Tables); err != nil {
			return nil, err
		}
		return &art, nil
	}
	if err := json.Unmarshal(trimmed, &art); err != nil {
		return nil, err
	}
	if art.Schema != "" && !strings.HasPrefix(art.Schema, "bpmax-bench/") {
		return nil, fmt.Errorf("unknown artifact schema %q", art.Schema)
	}
	return &art, nil
}

// gated reports whether a column participates in the regression gate and
// whether it allows absolute slack (allocation counts).
func gated(header string) (gate, slack bool) {
	h := strings.ToLower(header)
	switch {
	case strings.Contains(h, "time"):
		return true, false
	case strings.Contains(h, "alloc"):
		return true, true
	}
	return false, false
}

// parseQty parses a harness table cell: a plain float, a float with a
// trailing marker ("7x", "12*"), or a perf.FormatDuration string
// ("2.50s", "3.50ms", "250µs", "811ns") normalized to seconds. ok is
// false for label cells.
func parseQty(s string) (v float64, ok bool) {
	s = strings.TrimSpace(s)
	unit := 1.0
	switch {
	case strings.HasSuffix(s, "ns"):
		unit, s = 1e-9, strings.TrimSuffix(s, "ns")
	case strings.HasSuffix(s, "µs"), strings.HasSuffix(s, "us"):
		unit, s = 1e-6, strings.TrimSuffix(strings.TrimSuffix(s, "µs"), "us")
	case strings.HasSuffix(s, "ms"):
		unit, s = 1e-3, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "s"):
		s = strings.TrimSuffix(s, "s")
	case strings.HasSuffix(s, "x"), strings.HasSuffix(s, "*"):
		s = s[:len(s)-1]
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, false
	}
	return f * unit, true
}

// rowKey identifies a row by its label cells — the ones that do not parse
// as quantities — prefixed with the table ID.
func rowKey(id string, row []string) string {
	parts := []string{id}
	for _, cell := range row {
		if _, ok := parseQty(cell); !ok {
			parts = append(parts, strings.TrimSpace(cell))
		}
	}
	return strings.Join(parts, "|")
}

// compare gates every matched (row, gated column) cell of base against
// cur. It returns human-readable failure lines and the number of cells
// checked.
func compare(base, cur *artifact, threshold float64) (failures []string, checked int) {
	curTables := map[string]table{}
	for _, t := range cur.Tables {
		curTables[t.ID] = t
	}
	for _, bt := range base.Tables {
		ct, ok := curTables[bt.ID]
		if !ok {
			failures = append(failures, fmt.Sprintf("table %s missing from current run (regenerate with make bench-baseline if intended)", bt.ID))
			continue
		}
		curRows := map[string][]string{}
		for _, row := range ct.Rows {
			curRows[rowKey(ct.ID, row)] = row
		}
		curCol := map[string]int{}
		for i, h := range ct.Header {
			curCol[h] = i
		}
		for _, brow := range bt.Rows {
			key := rowKey(bt.ID, brow)
			crow, ok := curRows[key]
			if !ok {
				failures = append(failures, fmt.Sprintf("row %q missing from current run", key))
				continue
			}
			for i, h := range bt.Header {
				gate, slack := gated(h)
				if !gate || i >= len(brow) {
					continue
				}
				ci, ok := curCol[h]
				if !ok || ci >= len(crow) {
					failures = append(failures, fmt.Sprintf("%s: column %q missing from current run", key, h))
					continue
				}
				bv, bok := parseQty(brow[i])
				cv, cok := parseQty(crow[ci])
				if !bok || !cok {
					continue
				}
				checked++
				limit := bv * (1 + threshold/100)
				if slack {
					limit++ // zero-alloc baselines tolerate one stray alloc
				}
				if cv > limit {
					failures = append(failures, fmt.Sprintf("%s %s: %s -> %s (limit %.4g)",
						key, h, brow[i], crow[ci], limit))
				}
			}
		}
	}
	return failures, checked
}

// runSelftest proves the gate works: the baseline must pass against
// itself, and an artificially regressed copy (gated cells inflated 20%,
// allocations also bumped past the absolute slack) must fail.
func runSelftest(base *artifact, threshold float64, stdout io.Writer) error {
	if clean, n := compare(base, base, threshold); n == 0 {
		return fmt.Errorf("selftest: baseline has no gated cells")
	} else if len(clean) > 0 {
		return fmt.Errorf("selftest: baseline fails against itself: %v", clean)
	}
	bad := inflate(base, 1.20, 2)
	failures, _ := compare(base, bad, threshold)
	if len(failures) == 0 {
		return fmt.Errorf("selftest: synthetic 20%% regression passed the gate")
	}
	fmt.Fprintf(stdout, "benchgate selftest ok: clean baseline passes, synthetic regression trips %d gates\n", len(failures))
	return nil
}

// inflate returns a copy of art with every gated cell multiplied by
// factor; slack columns additionally get +bump so zero baselines regress
// past the absolute allowance too.
func inflate(art *artifact, factor, bump float64) *artifact {
	out := &artifact{Schema: art.Schema}
	for _, t := range art.Tables {
		nt := table{ID: t.ID, Header: append([]string(nil), t.Header...)}
		for _, row := range t.Rows {
			nrow := append([]string(nil), row...)
			for i, h := range t.Header {
				gate, slack := gated(h)
				if !gate || i >= len(nrow) {
					continue
				}
				v, ok := parseQty(nrow[i])
				if !ok {
					continue
				}
				v *= factor
				if slack {
					v += bump
				}
				// Re-emit durations in seconds; parseQty reads both forms.
				if strings.Contains(strings.ToLower(h), "time") {
					nrow[i] = fmt.Sprintf("%.6fs", v)
				} else {
					nrow[i] = fmt.Sprintf("%.3f", v)
				}
			}
			nt.Rows = append(nt.Rows, nrow)
		}
		out.Tables = append(out.Tables, nt)
	}
	return out
}
