package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baselineObj = `{
  "schema": "bpmax-bench/v1",
  "go": "go1.24.0",
  "tables": [
    {
      "ID": "ext-engine",
      "Header": ["runtime", "N1xN2", "time/fold", "GFLOPS", "allocs/fold", "KB/fold"],
      "Rows": [
        ["fresh fork-join", "8x64", "18.85ms", "0.79", "21.7", "611.4"],
        ["engine+pooled", "8x64", "13.10ms", "1.14", "0.0", "0.1"]
      ]
    }
  ]
}`

const baselineArr = `[
  {
    "ID": "ext-engine",
    "Header": ["runtime", "N1xN2", "time/fold", "GFLOPS", "allocs/fold", "KB/fold"],
    "Rows": [
      ["fresh fork-join", "8x64", "18.85ms", "0.79", "21.7", "611.4"],
      ["engine+pooled", "8x64", "13.10ms", "1.14", "0.0", "0.1"]
    ]
  }
]`

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseQty(t *testing.T) {
	cases := map[string]struct {
		v  float64
		ok bool
	}{
		"2.50s":  {2.5, true},
		"3.50ms": {0.0035, true},
		"250µs":  {0.00025, true},
		"811ns":  {0.000000811, true},
		"21.7":   {21.7, true},
		"7x":     {7, true},
		"12*":    {12, true},
		"8x64":   {0, false},
		"engine": {0, false},
		"":       {0, false},
	}
	for in, want := range cases {
		v, ok := parseQty(in)
		if ok != want.ok {
			t.Errorf("parseQty(%q) ok = %v, want %v", in, ok, want.ok)
			continue
		}
		if ok && (v < want.v*0.9999 || v > want.v*1.0001) {
			t.Errorf("parseQty(%q) = %v, want %v", in, v, want.v)
		}
	}
}

func TestIdenticalArtifactsPass(t *testing.T) {
	base := write(t, "base.json", baselineObj)
	cur := write(t, "cur.json", baselineObj)
	if err := run([]string{"-baseline", base, "-current", cur}, io.Discard); err != nil {
		t.Fatalf("identical artifacts failed the gate: %v", err)
	}
}

func TestLegacyArrayBaseline(t *testing.T) {
	base := write(t, "base.json", baselineArr)
	cur := write(t, "cur.json", baselineObj)
	if err := run([]string{"-baseline", base, "-current", cur}, io.Discard); err != nil {
		t.Fatalf("legacy array baseline vs object current failed: %v", err)
	}
}

func TestTimeRegressionFails(t *testing.T) {
	base := write(t, "base.json", baselineObj)
	// 18.85ms -> 23ms is a 22% regression; 13.10ms row left clean.
	cur := write(t, "cur.json", strings.Replace(baselineObj, "18.85ms", "23.00ms", 1))
	err := run([]string{"-baseline", base, "-current", cur}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "regressions") {
		t.Fatalf("22%% time regression passed the gate: %v", err)
	}
}

func TestTimeJitterWithinThresholdPasses(t *testing.T) {
	base := write(t, "base.json", baselineObj)
	// 18.85ms -> 20.00ms is ~6%: under the 15% threshold.
	cur := write(t, "cur.json", strings.Replace(baselineObj, "18.85ms", "20.00ms", 1))
	if err := run([]string{"-baseline", base, "-current", cur}, io.Discard); err != nil {
		t.Fatalf("6%% jitter tripped the gate: %v", err)
	}
}

func TestAllocSlackOnZeroBaseline(t *testing.T) {
	base := write(t, "base.json", baselineObj)
	// The zero-alloc row growing to 0.9 allocs is inside the absolute
	// slack of one; growing to 2.0 is a failure.
	ok := write(t, "ok.json", strings.Replace(baselineObj, `"0.0", "0.1"`, `"0.9", "0.1"`, 1))
	if err := run([]string{"-baseline", base, "-current", ok}, io.Discard); err != nil {
		t.Fatalf("sub-slack alloc growth tripped the gate: %v", err)
	}
	bad := write(t, "bad.json", strings.Replace(baselineObj, `"0.0", "0.1"`, `"2.0", "0.1"`, 1))
	if err := run([]string{"-baseline", base, "-current", bad}, io.Discard); err == nil {
		t.Fatal("2-alloc growth on a zero baseline passed the gate")
	}
}

func TestMissingRowFails(t *testing.T) {
	base := write(t, "base.json", baselineObj)
	cur := write(t, "cur.json", strings.Replace(baselineObj, "engine+pooled", "renamed-mode", 1))
	if err := run([]string{"-baseline", base, "-current", cur}, io.Discard); err == nil {
		t.Fatal("missing baseline row passed the gate")
	}
}

func TestMetricsErrorsFail(t *testing.T) {
	base := write(t, "base.json", baselineObj)
	cur := write(t, "cur.json", strings.Replace(baselineObj,
		`"tables":`, `"metrics": {"folds": 8, "errors": 3}, "tables":`, 1))
	err := run([]string{"-baseline", base, "-current", cur}, io.Discard)
	if err == nil {
		t.Fatal("current artifact with fold errors passed the gate")
	}
}

func TestSelftest(t *testing.T) {
	base := write(t, "base.json", baselineObj)
	if err := run([]string{"-baseline", base, "-selftest"}, io.Discard); err != nil {
		t.Fatalf("selftest: %v", err)
	}
}

func TestUsageErrors(t *testing.T) {
	base := write(t, "base.json", baselineObj)
	if err := run(nil, io.Discard); err == nil {
		t.Error("missing -baseline accepted")
	}
	if err := run([]string{"-baseline", base}, io.Discard); err == nil {
		t.Error("missing -current accepted")
	}
	if err := run([]string{"-baseline", "/nonexistent.json", "-current", base}, io.Discard); err == nil {
		t.Error("unreadable baseline accepted")
	}
	empty := write(t, "empty.json", "")
	if err := run([]string{"-baseline", empty, "-current", base}, io.Discard); err == nil {
		t.Error("empty baseline accepted")
	}
	badSchema := write(t, "bad.json", `{"schema": "other/v9", "tables": []}`)
	if err := run([]string{"-baseline", badSchema, "-current", base}, io.Discard); err == nil {
		t.Error("unknown schema accepted")
	}
	disjoint := write(t, "disjoint.json", `{"schema": "bpmax-bench/v1", "tables": [{"ID": "other", "Header": ["a"], "Rows": [["b"]]}]}`)
	if err := run([]string{"-baseline", disjoint, "-current", base}, io.Discard); err == nil {
		t.Error("disjoint artifacts (zero gated cells) accepted")
	}
}
