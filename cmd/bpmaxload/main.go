// Command bpmaxload drives a running bpmaxd with synthetic or recorded
// workloads and reports what the server did under them: latency quantiles,
// throughput, shed rate, cache hit rate.
//
// It is an open-loop replayer: requests fire at their trace timestamps
// whether or not earlier ones have completed, so an overloaded server shows
// up as shed (429) and tail latency rather than as a politely slowed
// client. Scheduling lag is tracked and reported so a client-side
// bottleneck is distinguishable from a server-side one.
//
// Modes:
//
//	bpmaxload -addr HOST:PORT -mixes poisson/uniform,bursty/uniform   synthesize and replay
//	bpmaxload -addr HOST:PORT -trace trace.jsonl                      replay a recorded trace
//	bpmaxload -record trace.jsonl -mixes poisson/uniform              write the trace, no server
//
// Each mix is ARRIVAL/LENGTHS, with arrivals poisson|bursty and lengths
// uniform|heavytail|screen (see internal/workload). The -json artifact is a
// bpmax-bench/v1 document (tables ext-serving and ext-serving-stages) that
// cmd/benchgate can gate. With -check, the exit status asserts server
// health: no 5xx, no transport errors, client and server ledgers agree,
// shed rate within -max-shed.
//
// When the server traces requests (bpmaxd's default), every response's
// Server-Timing header is parsed into a per-stage breakdown; the report
// then carries per-stage p50/p95/p99 and names the stage dominating the
// slow tail ("p99 dominated by queue: 62%"). -slowest-trace FILE fetches
// /debug/requests afterwards and writes the server's slowest requests as
// Chrome trace-event JSON. Failed requests are logged (-log-format
// text|json) with the server's X-Request-ID for cross-log correlation.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/bpmax-go/bpmax"
	itrace "github.com/bpmax-go/bpmax/internal/trace"
	"github.com/bpmax-go/bpmax/internal/workload"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bpmaxload:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bpmaxload", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8642", "bpmaxd address (host:port)")
	trace := fs.String("trace", "", "replay this JSONL trace instead of synthesizing")
	record := fs.String("record", "", "write the synthesized trace to this file and exit (no server needed)")
	mixes := fs.String("mixes", "poisson/uniform", "comma-separated ARRIVAL/LENGTHS scenarios to synthesize")
	rate := fs.Float64("rate", 20, "mean arrival rate in requests/second")
	n := fs.Int("n", 200, "requests per mix")
	seed := fs.Int64("seed", 1, "synthesis seed (same seed, same trace)")
	minLen := fs.Int("min-len", 8, "shortest synthesized strand")
	maxLen := fs.Int("max-len", 32, "longest synthesized strand")
	pool := fs.Int("pool", 8, "distinct strand pairs to draw from (>0 exercises the cache)")
	scanEvery := fs.Int("scan-every", 0, "make every Nth request a windowed scan (0 = folds only)")
	window := fs.Int("window", 16, "scan window span for synthesized scans")
	partitionEvery := fs.Int("partition-every", 0, "make every Nth fold a partition (BPPart) request (0 = max-plus only)")
	kt := fs.Float64("kt", 0, "kT stamped on synthesized partition requests (0 = server default)")
	timeoutMs := fs.Int64("timeout-ms", 0, "per-request timeout_ms stamped on synthesized requests (0 = none)")
	label := fs.String("label", "", "report label override (default: mix name or trace filename)")
	jsonOut := fs.String("json", "", "write the bpmax-bench/v1 artifact to this file")
	check := fs.Bool("check", false, "exit nonzero unless the run was healthy (no 5xx/transport errors, ledgers reconcile, shed within -max-shed)")
	maxShed := fs.Float64("max-shed", 1.0, "largest acceptable shed fraction under -check")
	slowestTrace := fs.String("slowest-trace", "", "after the run, fetch /debug/requests and write the server's slowest traces as Chrome trace-event JSON to this file")
	logFormat := fs.String("log-format", "text", "structured log encoding on stderr: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat)
	}
	logger := slog.New(handler)

	// Build the (label, requests) list to run.
	type job struct {
		label string
		reqs  []workload.Request
	}
	var jobs []job
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			return err
		}
		reqs, err := workload.ReadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		lbl := *label
		if lbl == "" {
			lbl = strings.TrimSuffix(filepath.Base(*trace), filepath.Ext(*trace))
		}
		jobs = append(jobs, job{lbl, reqs})
	} else {
		for _, mix := range strings.Split(*mixes, ",") {
			mix = strings.TrimSpace(mix)
			if mix == "" {
				continue
			}
			arrivalName, lengthsName, ok := strings.Cut(mix, "/")
			if !ok {
				lengthsName = "uniform"
			}
			arrival, err := workload.NamedArrival(arrivalName, *rate)
			if err != nil {
				return fmt.Errorf("mix %q: %w", mix, err)
			}
			lengths, err := workload.NamedLengths(lengthsName, *minLen, *maxLen)
			if err != nil {
				return fmt.Errorf("mix %q: %w", mix, err)
			}
			reqs := workload.Synthesize(workload.SynthConfig{
				Arrival:        arrival,
				Lengths:        lengths,
				Count:          *n,
				Seed:           *seed,
				Pool:           *pool,
				ScanEvery:      *scanEvery,
				Window:         *window,
				PartitionEvery: *partitionEvery,
				KT:             *kt,
				TimeoutMs:      *timeoutMs,
			})
			lbl := mix
			if *label != "" {
				lbl = *label
			}
			jobs = append(jobs, job{lbl, reqs})
		}
	}
	if len(jobs) == 0 {
		return errors.New("nothing to run: no trace and no mixes")
	}

	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			return err
		}
		for _, j := range jobs {
			fmt.Fprintf(f, "# bpmaxload trace: %s (%d requests)\n", j.label, len(j.reqs))
			if err := workload.WriteTrace(f, j.reqs); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "recorded %d mix(es) to %s\n", len(jobs), *record)
		return nil
	}

	base := "http://" + *addr
	client := &http.Client{}
	artifact := workload.NewArtifact()
	var unhealthy []string
	for _, j := range jobs {
		before, err := fetchSnapshot(ctx, client, base)
		if err != nil {
			return fmt.Errorf("%s: /metrics before run: %w", j.label, err)
		}
		col := &workload.Collector{}
		wall, err := replay(ctx, client, base, j.reqs, col, logger)
		if err != nil {
			return fmt.Errorf("%s: %w", j.label, err)
		}
		report := col.Report(j.label, wall)
		after, err := fetchSnapshot(ctx, client, base)
		if err != nil {
			return fmt.Errorf("%s: /metrics after run: %w", j.label, err)
		}
		if hr, ok := cacheHitRate(before, after); ok {
			report.CacheHitRate = hr
		}
		artifact.AddReport(report)
		printReport(stdout, report)
		if *check {
			unhealthy = append(unhealthy, audit(report, before, after, *maxShed)...)
		}
	}

	if *slowestTrace != "" {
		if err := fetchSlowest(ctx, client, base, *slowestTrace); err != nil {
			return fmt.Errorf("slowest-trace: %w", err)
		}
		fmt.Fprintf(stdout, "slowest traces: %s\n", *slowestTrace)
	}

	if *jsonOut != "" {
		blob, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "artifact: %s\n", *jsonOut)
	}
	if len(unhealthy) > 0 {
		return fmt.Errorf("check failed:\n  %s", strings.Join(unhealthy, "\n  "))
	}
	return nil
}

// replay fires reqs open-loop at their trace timestamps against base and
// feeds every outcome to col. It returns the run's wall time.
func replay(ctx context.Context, client *http.Client, base string, reqs []workload.Request, col *workload.Collector, logger *slog.Logger) (time.Duration, error) {
	start := time.Now()
	var wg sync.WaitGroup
	for i := range reqs {
		rq := reqs[i]
		due := start.Add(time.Duration(rq.AtMs * float64(time.Millisecond)))
		if d := time.Until(due); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				wg.Wait()
				return time.Since(start), ctx.Err()
			}
		}
		lag := time.Since(due) // >0 when the client fell behind schedule
		if lag < 0 {
			lag = 0
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, latency, requestID, stages := fire(ctx, client, base, rq)
			col.AddTimed(status, latency, lag, stages)
			// Failures are logged with the server's request ID so the
			// client-side record joins to the server's access log and
			// /debug/requests entry.
			if status == 0 || status >= 500 {
				logger.Warn("request failed",
					"name", rq.Name, "status", status,
					"request_id", requestID,
					"dur_ms", float64(latency)/1e6)
			}
		}()
	}
	wg.Wait()
	return time.Since(start), nil
}

// fire sends one trace request and returns its HTTP status (0 on a
// transport failure), observed latency, the server-assigned X-Request-ID,
// and the stage breakdown parsed from the Server-Timing header (nil when
// the server runs untraced).
func fire(ctx context.Context, client *http.Client, base string, rq workload.Request) (int, time.Duration, string, map[string]time.Duration) {
	path := "/v1/fold"
	body := map[string]any{"seq1": rq.Seq1, "seq2": rq.Seq2}
	if rq.Op == workload.OpScan {
		path = "/v1/scan"
		body["w1"], body["w2"] = rq.W1, rq.W2
	}
	if rq.Algebra != "" {
		body["algebra"] = rq.Algebra
	}
	if rq.KT != 0 {
		body["kt"] = rq.KT
	}
	if rq.Name != "" {
		body["name"] = rq.Name
	}
	if rq.TimeoutMs > 0 {
		body["timeout_ms"] = rq.TimeoutMs
	}
	blob, _ := json.Marshal(body)
	begin := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(blob))
	if err != nil {
		return 0, time.Since(begin), "", nil
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, time.Since(begin), "", nil
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, time.Since(begin),
		resp.Header.Get("X-Request-ID"),
		workload.ParseServerTiming(resp.Header.Get("Server-Timing"))
}

// fetchSlowest pulls the server's /debug/requests ring and writes its
// slowest traces as a Chrome trace-event file (loadable in chrome://tracing
// or Perfetto), slowest first.
func fetchSlowest(ctx context.Context, client *http.Client, base, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/debug/requests", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/requests: status %d (is the server running -trace-requests=false?)", resp.StatusCode)
	}
	var ring itrace.RingSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&ring); err != nil {
		return err
	}
	if len(ring.Slowest) == 0 {
		return errors.New("/debug/requests reported no traces")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := itrace.WriteChrome(f, ring.Slowest); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fetchSnapshot pulls the server's /metrics document.
func fetchSnapshot(ctx context.Context, client *http.Client, base string) (*bpmax.MetricsSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var snap bpmax.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// cacheHitRate is the server-side hit fraction across both cache layers
// over the interval between the two snapshots.
func cacheHitRate(before, after *bpmax.MetricsSnapshot) (float64, bool) {
	if before.Cache == nil || after.Cache == nil {
		return 0, false
	}
	hits := (after.Cache.SubstrateHits - before.Cache.SubstrateHits) +
		(after.Cache.ResultHits - before.Cache.ResultHits)
	misses := (after.Cache.SubstrateMisses - before.Cache.SubstrateMisses) +
		(after.Cache.ResultMisses - before.Cache.ResultMisses)
	if hits+misses == 0 {
		return 0, false
	}
	return float64(hits) / float64(hits+misses), true
}

// audit cross-checks the client's ledger against the server's for one run
// and returns the discrepancies, if any.
func audit(r workload.Report, before, after *bpmax.MetricsSnapshot, maxShed float64) []string {
	var bad []string
	if r.ServerErrs > 0 {
		bad = append(bad, fmt.Sprintf("%s: %d server errors (5xx)", r.Label, r.ServerErrs))
	}
	if r.NetErrs > 0 {
		bad = append(bad, fmt.Sprintf("%s: %d transport errors", r.Label, r.NetErrs))
	}
	if r.ClientErrs > 0 {
		bad = append(bad, fmt.Sprintf("%s: %d client errors (replayer sent requests the server rejected)", r.Label, r.ClientErrs))
	}
	if r.ShedRate > maxShed {
		bad = append(bad, fmt.Sprintf("%s: shed rate %.3f exceeds %.3f", r.Label, r.ShedRate, maxShed))
	}
	if before.Server == nil || after.Server == nil {
		bad = append(bad, fmt.Sprintf("%s: server did not report request accounting", r.Label))
		return bad
	}
	if got, want := after.Server.OK-before.Server.OK, r.OK; got != want {
		bad = append(bad, fmt.Sprintf("%s: server counted %d ok, client saw %d", r.Label, got, want))
	}
	if got, want := after.Server.Shed-before.Server.Shed, r.Shed; got != want {
		bad = append(bad, fmt.Sprintf("%s: server counted %d shed, client saw %d", r.Label, got, want))
	}
	return bad
}

// printReport renders one run's summary line for humans.
func printReport(w io.Writer, r workload.Report) {
	fmt.Fprintf(w, "%-24s %5d req  ok %-5d shed %-5d err %-3d  p50 %-9v p95 %-9v p99 %-9v  %6.1f rps  shed %.3f",
		r.Label, r.Total, r.OK, r.Shed, r.ClientErrs+r.ServerErrs+r.NetErrs,
		time.Duration(r.P50Nanos), time.Duration(r.P95Nanos), time.Duration(r.P99Nanos),
		r.Throughput, r.ShedRate)
	if r.CacheHitRate >= 0 {
		fmt.Fprintf(w, "  cache %.2f", r.CacheHitRate)
	}
	fmt.Fprintf(w, "  lag %v\n", time.Duration(r.MaxLagNanos))
	if len(r.Stages) == 0 {
		return
	}
	fmt.Fprintf(w, "%-24s stage attribution (%d/%d sampled, server covers %.0f%% of e2e):",
		"", r.StagedRequests, r.OK, r.ServerCoverage*100)
	for _, s := range r.Stages {
		fmt.Fprintf(w, "  %s p99 %v", s.Stage, time.Duration(s.P99Nanos))
	}
	fmt.Fprintln(w)
	if r.TailDominant != "" {
		fmt.Fprintf(w, "%-24s p99 dominated by %s\n", "", r.TailDominant)
	}
}
