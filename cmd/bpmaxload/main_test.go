package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/bpmax-go/bpmax/internal/workload"
)

func TestRecordWritesReadableTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var out bytes.Buffer
	err := run(t.Context(), []string{
		"-record", path, "-mixes", "poisson/uniform", "-n", "25",
		"-rate", "100", "-seed", "3", "-scan-every", "5", "-window", "8", "-timeout-ms", "250",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reqs, err := workload.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 25 {
		t.Fatalf("recorded %d requests, want 25", len(reqs))
	}
	scans := 0
	for _, rq := range reqs {
		if rq.Op == workload.OpScan {
			scans++
		}
		if rq.TimeoutMs != 250 {
			t.Fatalf("timeout_ms not stamped: %+v", rq)
		}
	}
	if scans != 5 {
		t.Errorf("got %d scans, want 5", scans)
	}
}

// stubServer mimics bpmaxd's wire surface with scripted outcomes so the
// replayer's accounting and artifact paths are testable without folding.
type stubServer struct {
	ok, shed, errs atomic.Int64
	shedEvery      int64 // every Nth fold answers 429
	failEvery      int64 // every Nth fold answers 500
	hits, misses   atomic.Int64
}

func (st *stubServer) start(t *testing.T) string {
	t.Helper()
	mux := http.NewServeMux()
	serve := func(w http.ResponseWriter, r *http.Request) {
		n := st.ok.Load() + st.shed.Load() + st.errs.Load() + 1
		switch {
		case st.failEvery > 0 && n%st.failEvery == 0:
			st.errs.Add(1)
			w.WriteHeader(http.StatusInternalServerError)
		case st.shedEvery > 0 && n%st.shedEvery == 0:
			st.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		default:
			st.ok.Add(1)
			if n%2 == 0 {
				st.hits.Add(1)
			} else {
				st.misses.Add(1)
			}
			json.NewEncoder(w).Encode(map[string]any{"score": 1.0})
		}
	}
	mux.HandleFunc("/v1/fold", serve)
	mux.HandleFunc("/v1/scan", serve)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"server": map[string]any{
				"requests": st.ok.Load() + st.shed.Load() + st.errs.Load(),
				"ok":       st.ok.Load(),
				"shed":     st.shed.Load(),
				"failed":   st.errs.Load(),
			},
			"cache": map[string]any{
				"result_hits":   st.hits.Load(),
				"result_misses": st.misses.Load(),
			},
		})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

func TestReplayReportAndArtifact(t *testing.T) {
	st := &stubServer{shedEvery: 5}
	addr := st.start(t)
	artPath := filepath.Join(t.TempDir(), "art.json")
	var out bytes.Buffer
	err := run(t.Context(), []string{
		"-addr", addr, "-mixes", "poisson/uniform,bursty/heavytail",
		"-n", "40", "-rate", "2000", "-seed", "5",
		"-json", artPath, "-check", "-max-shed", "0.5",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	blob, err := os.ReadFile(artPath)
	if err != nil {
		t.Fatal(err)
	}
	var art workload.Artifact
	if err := json.Unmarshal(blob, &art); err != nil {
		t.Fatal(err)
	}
	if art.Schema != workload.ArtifactSchema || len(art.Tables) != 2 {
		t.Fatalf("artifact shape: schema=%q tables=%d", art.Schema, len(art.Tables))
	}
	if len(art.Tables[0].Rows) != 2 {
		t.Fatalf("rows = %d, want one per mix", len(art.Tables[0].Rows))
	}
	for _, label := range []string{"poisson/uniform", "bursty/heavytail"} {
		r, ok := art.Reports[label]
		if !ok {
			t.Fatalf("report %q missing (have %v)", label, art.Reports)
		}
		if r.Total != 40 || r.OK+r.Shed != 40 {
			t.Errorf("%s: accounting %+v", label, r)
		}
		if r.CacheHitRate < 0 {
			t.Errorf("%s: cache hit rate not fetched from /metrics", label)
		}
	}
	if !strings.Contains(out.String(), "poisson/uniform") {
		t.Errorf("summary output missing mix line:\n%s", out.String())
	}
}

func TestCheckFailsOnServerErrors(t *testing.T) {
	st := &stubServer{failEvery: 4}
	addr := st.start(t)
	var out bytes.Buffer
	err := run(t.Context(), []string{
		"-addr", addr, "-mixes", "poisson/uniform", "-n", "20", "-rate", "2000", "-check",
	}, &out)
	if err == nil {
		t.Fatal("-check accepted a run with 5xx responses")
	}
	if !strings.Contains(err.Error(), "server errors") {
		t.Errorf("error %v does not name the 5xx failure", err)
	}
}

func TestCheckFailsOnExcessiveShed(t *testing.T) {
	st := &stubServer{shedEvery: 2}
	addr := st.start(t)
	var out bytes.Buffer
	err := run(t.Context(), []string{
		"-addr", addr, "-mixes", "poisson/uniform", "-n", "20", "-rate", "2000",
		"-check", "-max-shed", "0.1",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "shed rate") {
		t.Fatalf("want shed-rate failure, got %v", err)
	}
}

func TestReplayTraceFile(t *testing.T) {
	st := &stubServer{}
	addr := st.start(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "mini.jsonl")
	var out bytes.Buffer
	if err := run(t.Context(), []string{
		"-record", path, "-mixes", "poisson/uniform", "-n", "10", "-rate", "2000", "-seed", "8",
	}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(t.Context(), []string{"-addr", addr, "-trace", path, "-check"}, &out); err != nil {
		t.Fatalf("replay: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "mini") {
		t.Errorf("trace label not derived from filename:\n%s", out.String())
	}
}

func TestUnknownMixRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run(t.Context(), []string{"-record", filepath.Join(t.TempDir(), "x.jsonl"),
		"-mixes", "warp/uniform"}, &out); err == nil {
		t.Fatal("unknown arrival accepted")
	}
}
