package bpmax

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"github.com/bpmax-go/bpmax/internal/seqio"
)

// FastaRecord is one named sequence from a FASTA source, normalized to the
// canonical upper-case RNA alphabet.
type FastaRecord struct {
	Name string
	Seq  string
}

// ReadFasta parses FASTA records from r (tolerating CRLF, wrapped lines,
// lower case and DNA-style T). Pass resolveSeed != 0 to also accept IUPAC
// ambiguity codes, resolved deterministically from that seed.
func ReadFasta(r io.Reader, resolveSeed int64) ([]FastaRecord, error) {
	var recs []seqio.Record
	var err error
	if resolveSeed != 0 {
		recs, err = seqio.ReadResolving(r, rand.New(rand.NewSource(resolveSeed)))
	} else {
		recs, err = seqio.Read(r)
	}
	if err != nil {
		return nil, err
	}
	out := make([]FastaRecord, len(recs))
	for i, rec := range recs {
		out[i] = FastaRecord{Name: rec.Name, Seq: rec.Seq.String()}
	}
	return out, nil
}

// LoadFasta reads a FASTA file from disk.
func LoadFasta(path string, resolveSeed int64) ([]FastaRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bpmax: %w", err)
	}
	defer f.Close()
	return ReadFasta(f, resolveSeed)
}

// PairsFromFasta turns consecutive record pairs (0&1, 2&3, ...) into batch
// items for FoldBatch; an odd trailing record is an error.
func PairsFromFasta(recs []FastaRecord) ([]BatchItem, error) {
	if len(recs)%2 != 0 {
		return nil, fmt.Errorf("bpmax: %d FASTA records do not form pairs", len(recs))
	}
	items := make([]BatchItem, 0, len(recs)/2)
	for i := 0; i < len(recs); i += 2 {
		items = append(items, BatchItem{
			Name: recs[i].Name + " x " + recs[i+1].Name,
			Seq1: recs[i].Seq,
			Seq2: recs[i+1].Seq,
		})
	}
	return items, nil
}
