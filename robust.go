// Robustness layer: cancellation, deadlines, memory budgeting, graceful
// degradation and panic isolation for long-running folds.
//
// BPMax is Θ(N³M³) time and Θ(N²M²) space, so a production caller must be
// able to bound both before committing: FoldContext honors a
// context.Context cooperatively at wavefront/triangle granularity in every
// schedule, WithMemoryLimit rejects over-budget folds with a typed
// *MemoryLimitError before the table is allocated, and
// WithDegradeToWindowed opts into the degradation ladder
//
//	full table (box map) → packed map (half the memory) → windowed scan
//
// recording which rung fired in Result.Degradation. A panic on any solver
// worker is recovered and returned as a *PanicError instead of killing the
// process, so one poisoned fold fails one call (or one batch item), not the
// service.

package bpmax

import (
	"context"
	"errors"
	"fmt"
	"time"

	ibpmax "github.com/bpmax-go/bpmax/internal/bpmax"
	imetrics "github.com/bpmax-go/bpmax/internal/metrics"
	"github.com/bpmax-go/bpmax/internal/rna"
)

// PanicError is the error a fold returns when a solver goroutine panicked;
// it carries the panic value and the panicking goroutine's stack. Match it
// with errors.As.
type PanicError = ibpmax.PanicError

// Degradation records which memory fallback, if any, a budgeted fold took.
type Degradation int

const (
	// DegradeNone: the fold ran with the requested table layout.
	DegradeNone Degradation = iota
	// DegradePacked: the bounding-box table was over budget but the packed
	// quarter-space map (half the memory) fit, so the fold used that. Same
	// exact scores, somewhat slower fill.
	DegradePacked
	// DegradeWindowed: no full-table layout fit the budget; the fold fell
	// back to the windowed scan configured by WithDegradeToWindowed.
	// Result.Score is then the best in-window interaction score.
	DegradeWindowed
)

// String returns "none", "packed" or "windowed".
func (d Degradation) String() string {
	switch d {
	case DegradeNone:
		return "none"
	case DegradePacked:
		return "packed"
	case DegradeWindowed:
		return "windowed"
	}
	return fmt.Sprintf("Degradation(%d)", int(d))
}

// MemoryLimitError reports a fold rejected before any table allocation
// because every permitted layout exceeds the configured memory limit.
type MemoryLimitError struct {
	// EstimateBytes is the smallest table footprint among the layouts the
	// fold was permitted to consider (box, packed, and — when degradation
	// is enabled — the windowed band).
	EstimateBytes int64
	// LimitBytes is the limit set with WithMemoryLimit.
	LimitBytes int64
}

func (e *MemoryLimitError) Error() string {
	return fmt.Sprintf("bpmax: fold needs at least %d bytes of table storage, over the %d-byte memory limit",
		e.EstimateBytes, e.LimitBytes)
}

// WithMemoryLimit bounds the F-table storage a fold may allocate, in bytes
// (0, the default, means unlimited). The footprint is computed analytically
// before allocation: a fold that cannot fit returns a *MemoryLimitError —
// or degrades, see WithDegradeToWindowed — without touching the allocator.
func WithMemoryLimit(bytes int64) Option {
	return func(o *options) { o.memLimit = bytes }
}

// WithDegradeToWindowed lets a fold that exceeds its WithMemoryLimit budget
// fall back down the degradation ladder instead of failing: first the
// packed quarter-space map (exact, half the bounding-box memory), then a
// windowed scan with windows (w1, w2) (the local-interaction screen; the
// memory-bounded mode of the GPU formulations). Result.Degradation records
// which rung fired. Without WithMemoryLimit this option has no effect.
func WithDegradeToWindowed(w1, w2 int) Option {
	return func(o *options) { o.degradeW1, o.degradeW2 = w1, w2 }
}

// EstimateBytes returns the F-table storage, in bytes, that a full fold of
// sequences with lengths n1 and n2 would allocate under the given options
// (only the memory map matters: WithPackedMemory halves it). Use it to
// budget before folding; Fold with WithMemoryLimit performs the same check
// internally.
func EstimateBytes(n1, n2 int, opts ...Option) int64 {
	o := buildOptions(opts)
	return ibpmax.EstimateBytes(n1, n2, o.cfg.Map)
}

// EstimateWindowedBytes returns the banded-table storage, in bytes, of a
// windowed scan over lengths n1, n2 with windows w1, w2.
func EstimateWindowedBytes(n1, n2, w1, w2 int) int64 {
	return ibpmax.EstimateWindowedBytes(n1, n2, w1, w2)
}

// FoldContext is Fold with cooperative cancellation, deadlines, memory
// budgeting and panic isolation.
//
// Cancellation: every schedule checks ctx at wavefront/triangle granularity
// (one triangle, row or row-tile of work per check), so cancellation
// latency is bounded by one in-flight task per worker — milliseconds even
// on large problems — and no goroutine outlives the call. On cancellation
// the partial table is discarded and ctx.Err() (context.Canceled or
// context.DeadlineExceeded) is returned.
//
// Memory budgeting: with WithMemoryLimit set, the table footprint is
// estimated analytically first. An over-budget fold either degrades (see
// WithDegradeToWindowed) or returns a *MemoryLimitError without allocating.
//
// Panic isolation: a panic on any solver worker is recovered and returned
// as a *PanicError instead of crashing the process.
//
// The background-context fast path is bit-identical to Fold: same table,
// same score, same traceback.
func FoldContext(ctx context.Context, seq1, seq2 string, opts ...Option) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := buildOptions(opts)
	v, err := o.internalVariant()
	if err != nil {
		o.metrics.RecordError()
		return nil, err
	}
	// The result shell is acquired before the solve so per-fold metrics
	// record straight into Result.Metrics — no separate sink, no extra
	// allocation on the steady-state path. Error exits hand it back.
	res := o.getResult()
	if o.observed() {
		o.cfg.Metrics = &res.Metrics
	}
	sub := imetrics.Begin(o.cfg.Metrics, o.cfg.Tracer, imetrics.PhaseSubstrate)
	var p *ibpmax.Problem
	if o.pool != nil {
		// Pooled path: the problem substrate (sequence buffers, score and
		// S tables) is recycled through the pool. Validation errors carry the
		// sequence index; rewrap them into the same message shape as below.
		p, err = o.pool.p.NewProblem(seq1, seq2, o.params())
		if err != nil {
			o.putResult(res)
			o.metrics.RecordError()
			var se *ibpmax.SequenceError
			if errors.As(err, &se) {
				return nil, fmt.Errorf("bpmax: sequence %d: %w", se.Index, se.Err)
			}
			return nil, err
		}
	} else {
		s1, err := rna.New(seq1)
		if err != nil {
			o.putResult(res)
			o.metrics.RecordError()
			return nil, fmt.Errorf("bpmax: sequence 1: %w", err)
		}
		s2, err := rna.New(seq2)
		if err != nil {
			o.putResult(res)
			o.metrics.RecordError()
			return nil, fmt.Errorf("bpmax: sequence 2: %w", err)
		}
		p, err = ibpmax.NewProblem(s1, s2, o.params())
		if err != nil {
			o.putResult(res)
			o.metrics.RecordError()
			return nil, err
		}
	}
	sub.End(1)
	cfg, deg, err := o.budget(p.N1, p.N2)
	if err != nil {
		p.Release()
		o.putResult(res)
		o.metrics.RecordError()
		return nil, err
	}
	if deg == DegradeWindowed {
		return o.foldViaWindow(ctx, p, res)
	}
	if o.observed() && o.memLimit > 0 {
		res.Metrics.BudgetEstimateBytes = o.chargeBytes(p.N1, p.N2, cfg.Map)
	}
	start := time.Now()
	ft, err := ibpmax.SolveContext(ctx, p, v, cfg)
	if err != nil {
		p.Release()
		o.putResult(res)
		o.metrics.RecordError()
		return nil, err
	}
	elapsed := time.Since(start)
	res.Score = p.Score(ft)
	res.N1 = p.N1
	res.N2 = p.N2
	res.FLOPs = ibpmax.BPMaxFlops(p.N1, p.N2)
	res.Elapsed = elapsed
	res.TableBytes = ft.Bytes()
	res.Degradation = deg
	res.prob = p
	res.ft = ft
	if o.observed() {
		res.Metrics.FillNanos = int64(elapsed)
		res.Metrics.Cells = ibpmax.CellElements(p.N1, p.N2)
		res.Metrics.FLOPs = res.FLOPs
		res.Metrics.TableBytes = res.TableBytes
		res.Metrics.Degraded = deg.String()
		o.metrics.RecordFold(&res.Metrics)
	}
	return res, nil
}

// chargeBytes is the full-table estimate the budget charged this fold:
// pool-aware when pooled, analytic otherwise.
func (o options) chargeBytes(n1, n2 int, kind ibpmax.MapKind) int64 {
	if o.pool != nil {
		return o.pool.p.ChargeBytes(n1, n2, kind)
	}
	return ibpmax.EstimateBytes(n1, n2, kind)
}

// budget resolves the memory-limit policy for an n1 × n2 fold: it returns
// the (possibly downgraded) solver config and which degradation fired, or a
// *MemoryLimitError when nothing permitted fits. It allocates nothing.
//
// For a pooled fold the charge is the pool's footprint after serving the
// request: idle retained buffers plus the class-rounded allocation the fold
// would add if no idle buffer of its size class exists. A fold whose table
// fits an already-retained buffer is therefore charged the retention, not
// retention + table — pooling does not double-bill the budget.
func (o options) budget(n1, n2 int) (ibpmax.Config, Degradation, error) {
	cfg := o.cfg
	if o.memLimit <= 0 {
		return cfg, DegradeNone, nil
	}
	estimate := func(kind ibpmax.MapKind) int64 {
		if o.pool != nil {
			return o.pool.p.ChargeBytes(n1, n2, kind)
		}
		return ibpmax.EstimateBytes(n1, n2, kind)
	}
	estimateWindowed := func() int64 {
		if o.pool != nil {
			return o.pool.p.ChargeWindowedBytes(n1, n2, o.degradeW1, o.degradeW2)
		}
		return ibpmax.EstimateWindowedBytes(n1, n2, o.degradeW1, o.degradeW2)
	}
	smallest := estimate(cfg.Map)
	if smallest <= o.memLimit {
		return cfg, DegradeNone, nil
	}
	// Rung 1: the packed quarter-space map (no-op when already selected).
	if packed := estimate(ibpmax.MapPacked); packed <= o.memLimit {
		cfg.Map = ibpmax.MapPacked
		return cfg, DegradePacked, nil
	} else if packed < smallest {
		smallest = packed
	}
	// Rung 2: the windowed scan, if the caller opted in.
	if o.degradeW1 > 0 && o.degradeW2 > 0 {
		if w := estimateWindowed(); w <= o.memLimit {
			return cfg, DegradeWindowed, nil
		} else if w < smallest {
			smallest = w
		}
	}
	return cfg, DegradeNone, &MemoryLimitError{EstimateBytes: smallest, LimitBytes: o.memLimit}
}

// foldViaWindow runs the windowed-scan rung of the degradation ladder and
// wraps it as a Result (Degradation == DegradeWindowed, Window set). The
// caller's result shell comes in so the scan's metrics accumulate into the
// same Result.Metrics the substrate span already wrote.
func (o options) foldViaWindow(ctx context.Context, p *ibpmax.Problem, res *Result) (*Result, error) {
	if o.observed() && o.memLimit > 0 {
		if o.pool != nil {
			res.Metrics.BudgetEstimateBytes = o.pool.p.ChargeWindowedBytes(p.N1, p.N2, o.degradeW1, o.degradeW2)
		} else {
			res.Metrics.BudgetEstimateBytes = ibpmax.EstimateWindowedBytes(p.N1, p.N2, o.degradeW1, o.degradeW2)
		}
	}
	start := time.Now()
	wt, err := ibpmax.SolveWindowedContext(ctx, p, o.degradeW1, o.degradeW2, o.cfg)
	if err != nil {
		p.Release()
		o.putResult(res)
		o.metrics.RecordError()
		return nil, err
	}
	elapsed := time.Since(start)
	best, i1, j1, i2, j2 := wt.Best()
	win := o.getWindowResult()
	win.Best, win.I1, win.J1, win.I2, win.J2 = best, i1, j1, i2, j2
	win.TableBytes = wt.Bytes()
	win.Elapsed = elapsed
	win.wt = wt
	win.prob = p
	res.Score = best
	res.N1 = p.N1
	res.N2 = p.N2
	res.Elapsed = elapsed
	res.TableBytes = wt.Bytes()
	res.Degradation = DegradeWindowed
	res.Window = win
	res.prob = p
	if o.observed() {
		res.Metrics.FillNanos = int64(elapsed)
		res.Metrics.TableBytes = res.TableBytes
		res.Metrics.Degraded = DegradeWindowed.String()
		win.Metrics = res.Metrics
		o.metrics.RecordFold(&res.Metrics)
	}
	return res, nil
}
