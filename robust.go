// Robustness layer: cancellation, deadlines, memory budgeting, graceful
// degradation and panic isolation for long-running folds.
//
// BPMax is Θ(N³M³) time and Θ(N²M²) space, so a production caller must be
// able to bound both before committing: FoldContext honors a
// context.Context cooperatively at wavefront/triangle granularity in every
// schedule, WithMemoryLimit rejects over-budget folds with a typed
// *MemoryLimitError before the table is allocated, and
// WithDegradeToWindowed opts into the degradation ladder
//
//	full table (box map) → packed map (half the memory) → windowed scan
//
// recording which rung fired in Result.Degradation. A panic on any solver
// worker is recovered and returned as a *PanicError instead of killing the
// process, so one poisoned fold fails one call (or one batch item), not the
// service.

package bpmax

import (
	"context"
	"fmt"

	ibpmax "github.com/bpmax-go/bpmax/internal/bpmax"
)

// PanicError is the error a fold returns when a solver goroutine panicked;
// it carries the panic value and the panicking goroutine's stack. Match it
// with errors.As.
type PanicError = ibpmax.PanicError

// Degradation records which memory fallback, if any, a budgeted fold took.
type Degradation int

const (
	// DegradeNone: the fold ran with the requested table layout.
	DegradeNone Degradation = iota
	// DegradePacked: the bounding-box table was over budget but the packed
	// quarter-space map (half the memory) fit, so the fold used that. Same
	// exact scores, somewhat slower fill.
	DegradePacked
	// DegradeWindowed: no full-table layout fit the budget; the fold fell
	// back to the windowed scan configured by WithDegradeToWindowed.
	// Result.Score is then the best in-window interaction score.
	DegradeWindowed
)

// String returns "none", "packed" or "windowed".
func (d Degradation) String() string {
	switch d {
	case DegradeNone:
		return "none"
	case DegradePacked:
		return "packed"
	case DegradeWindowed:
		return "windowed"
	}
	return fmt.Sprintf("Degradation(%d)", int(d))
}

// MemoryLimitError reports a fold rejected before any table allocation
// because every permitted layout exceeds the configured memory limit.
type MemoryLimitError struct {
	// EstimateBytes is the smallest table footprint among the layouts the
	// fold was permitted to consider (box, packed, and — when degradation
	// is enabled — the windowed band).
	EstimateBytes int64
	// LimitBytes is the limit set with WithMemoryLimit.
	LimitBytes int64
}

func (e *MemoryLimitError) Error() string {
	return fmt.Sprintf("bpmax: fold needs at least %d bytes of table storage, over the %d-byte memory limit",
		e.EstimateBytes, e.LimitBytes)
}

// WithMemoryLimit bounds the F-table storage a fold may allocate, in bytes
// (0, the default, means unlimited). The footprint is computed analytically
// before allocation: a fold that cannot fit returns a *MemoryLimitError —
// or degrades, see WithDegradeToWindowed — without touching the allocator.
// The charge covers everything the fold would keep resident: the table
// itself, storage retained by a configured pool, and bytes pinned by a
// configured cache (WithCache).
func WithMemoryLimit(bytes int64) Option {
	return func(o *options) { o.memLimit = bytes }
}

// WithDegradeToWindowed lets a fold that exceeds its WithMemoryLimit budget
// fall back down the degradation ladder instead of failing: first the
// packed quarter-space map (exact, half the bounding-box memory), then a
// windowed scan with windows (w1, w2) (the local-interaction screen; the
// memory-bounded mode of the GPU formulations). Result.Degradation records
// which rung fired. Without WithMemoryLimit this option has no effect.
func WithDegradeToWindowed(w1, w2 int) Option {
	return func(o *options) { o.degradeW1, o.degradeW2 = w1, w2 }
}

// EstimateBytes returns the F-table storage, in bytes, that a full fold of
// sequences with lengths n1 and n2 would allocate under the given options
// (only the memory map matters: WithPackedMemory halves it). Use it to
// budget before folding; Fold with WithMemoryLimit performs the same check
// internally.
func EstimateBytes(n1, n2 int, opts ...Option) int64 {
	o := buildOptions(opts)
	return ibpmax.EstimateBytes(n1, n2, o.cfg.Map)
}

// EstimateWindowedBytes returns the banded-table storage, in bytes, of a
// windowed scan over lengths n1, n2 with windows w1, w2.
func EstimateWindowedBytes(n1, n2, w1, w2 int) int64 {
	return ibpmax.EstimateWindowedBytes(n1, n2, w1, w2)
}

// FoldContext is Fold with cooperative cancellation, deadlines, memory
// budgeting and panic isolation.
//
// Cancellation: every schedule checks ctx at wavefront/triangle granularity
// (one triangle, row or row-tile of work per check), so cancellation
// latency is bounded by one in-flight task per worker — milliseconds even
// on large problems — and no goroutine outlives the call. On cancellation
// the partial table is discarded and ctx.Err() (context.Canceled or
// context.DeadlineExceeded) is returned.
//
// Memory budgeting: with WithMemoryLimit set, the table footprint is
// estimated analytically first. An over-budget fold either degrades (see
// WithDegradeToWindowed) or returns a *MemoryLimitError without allocating.
//
// Panic isolation: a panic on any solver worker is recovered and returned
// as a *PanicError instead of crashing the process.
//
// The background-context fast path is bit-identical to Fold: same table,
// same score, same traceback.
func FoldContext(ctx context.Context, seq1, seq2 string, opts ...Option) (*Result, error) {
	return buildOptions(opts).runFold(ctx, seq1, seq2)
}
