// Robustness layer: cancellation, deadlines, memory budgeting, graceful
// degradation and panic isolation for long-running folds.
//
// BPMax is Θ(N³M³) time and Θ(N²M²) space, so a production caller must be
// able to bound both before committing: FoldContext honors a
// context.Context cooperatively at wavefront/triangle granularity in every
// schedule, WithMemoryLimit rejects over-budget folds with a typed
// *MemoryLimitError before the table is allocated, and
// WithDegradeToWindowed opts into the degradation ladder
//
//	full table (box map) → packed map (half the memory) → windowed scan
//
// recording which rung fired in Result.Degradation. A panic on any solver
// worker is recovered and returned as a *PanicError instead of killing the
// process, so one poisoned fold fails one call (or one batch item), not the
// service.

package bpmax

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	ibpmax "github.com/bpmax-go/bpmax/internal/bpmax"
	"github.com/bpmax-go/bpmax/internal/fault"
)

// PanicError is the error a fold returns when a solver goroutine panicked;
// it carries the panic value and the panicking goroutine's stack. Match it
// with errors.As.
type PanicError = ibpmax.PanicError

// FaultError is the typed error an armed failpoint injects (see
// internal/fault and the `bpmax -failpoints` flag). Injected faults are
// transient by definition — WithRetry retries them.
type FaultError = fault.Error

// RetryConfig bounds the retry policy installed by WithRetry. The zero
// value selects the defaults noted on each field.
type RetryConfig struct {
	// MaxAttempts is the total number of attempts, including the first
	// (default 3; 1 disables retries without removing the policy).
	MaxAttempts int
	// Base is the backoff before the first retry (default 1ms); it doubles
	// per further retry, capped at Max (default 100ms). The actual sleep is
	// jittered uniformly over [d/2, d] so synchronized failures do not
	// retry in lockstep.
	Base time.Duration
	Max  time.Duration
	// Seed makes the jitter sequence deterministic (0 selects a fixed
	// default seed; the sequence is deterministic either way — set distinct
	// seeds to decorrelate callers).
	Seed int64
}

// WithRetry retries transiently failed folds: after an attempt fails with a
// transient error (see IsTransient — recovered solver panics, injected
// faults, failed single-flight leaders; never cancellation, memory-limit or
// admission errors), the fold backs off exponentially with jitter and runs
// again, up to MaxAttempts total attempts. The admission slot, if any, is
// released during the backoff and re-acquired by the next attempt, so a
// retrying request never pins concurrency it is not using. Retries apply to
// Fold/FoldContext, FoldBatch items and ScanWindowed; the single-strand
// entry points are cheap enough that callers simply re-invoke them.
func WithRetry(rc RetryConfig) Option {
	if rc.MaxAttempts <= 0 {
		rc.MaxAttempts = 3
	}
	if rc.Base <= 0 {
		rc.Base = time.Millisecond
	}
	if rc.Max <= 0 {
		rc.Max = 100 * time.Millisecond
	}
	return func(o *options) { o.retry = &rc }
}

// IsTransient reports whether err is a failure WithRetry would retry: a
// recovered solver panic (*PanicError) or an injected fault (*FaultError),
// including either surfacing as a failed single-flight leader. Context
// cancellation, deadline expiry, *MemoryLimitError and *AdmissionError are
// never transient — retrying cannot help them.
func IsTransient(err error) bool {
	var pe *PanicError
	if errors.As(err, &pe) {
		return true
	}
	var fe *FaultError
	return errors.As(err, &fe)
}

// isTransientFold is the pipeline's retry predicate; a separate name so the
// policy reads as a decision, not a type assertion.
func isTransientFold(err error) bool { return err != nil && IsTransient(err) }

// recoveredError converts a recovered panic value into the typed error the
// robustness layer returns. Values that already are (or carry) a
// *PanicError pass through, keeping the original panic stack.
func recoveredError(r any) error {
	if pe, ok := r.(*PanicError); ok {
		return pe
	}
	if err, ok := r.(error); ok {
		var pe *PanicError
		if errors.As(err, &pe) {
			return pe
		}
	}
	return &PanicError{Value: r, Stack: debug.Stack()}
}

// backoff returns the jittered sleep before retry attempt n (1-based):
// Base doubled per attempt, capped at Max, then jittered uniformly over
// [d/2, d] with a splitmix64 stream keyed by Seed and n.
func (rc *RetryConfig) backoff(attempt int) time.Duration {
	d := rc.Base
	for i := 1; i < attempt && d < rc.Max; i++ {
		d *= 2
	}
	if d > rc.Max {
		d = rc.Max
	}
	if d <= 0 {
		return 0
	}
	seed := uint64(rc.Seed)
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	h := splitmix64(seed ^ uint64(attempt)*0xff51afd7ed558ccd)
	half := d / 2
	return half + time.Duration(h%uint64(half+1))
}

// splitmix64 mirrors internal/fault's mixer for the retry jitter stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Degradation records which memory fallback, if any, a budgeted fold took.
type Degradation int

const (
	// DegradeNone: the fold ran with the requested table layout.
	DegradeNone Degradation = iota
	// DegradePacked: the bounding-box table was over budget but the packed
	// quarter-space map (half the memory) fit, so the fold used that. Same
	// exact scores, somewhat slower fill.
	DegradePacked
	// DegradeWindowed: no full-table layout fit the budget; the fold fell
	// back to the windowed scan configured by WithDegradeToWindowed.
	// Result.Score is then the best in-window interaction score.
	DegradeWindowed
)

// String returns "none", "packed" or "windowed".
func (d Degradation) String() string {
	switch d {
	case DegradeNone:
		return "none"
	case DegradePacked:
		return "packed"
	case DegradeWindowed:
		return "windowed"
	}
	return fmt.Sprintf("Degradation(%d)", int(d))
}

// MemoryLimitError reports a fold rejected before any table allocation
// because every permitted layout exceeds the configured memory limit.
type MemoryLimitError struct {
	// EstimateBytes is the smallest table footprint among the layouts the
	// fold was permitted to consider (box, packed, and — when degradation
	// is enabled — the windowed band).
	EstimateBytes int64
	// LimitBytes is the limit set with WithMemoryLimit.
	LimitBytes int64
}

func (e *MemoryLimitError) Error() string {
	return fmt.Sprintf("bpmax: fold needs at least %d bytes of table storage, over the %d-byte memory limit",
		e.EstimateBytes, e.LimitBytes)
}

// WithMemoryLimit bounds the F-table storage a fold may allocate, in bytes
// (0, the default, means unlimited). The footprint is computed analytically
// before allocation: a fold that cannot fit returns a *MemoryLimitError —
// or degrades, see WithDegradeToWindowed — without touching the allocator.
// The charge covers everything the fold would keep resident: the table
// itself, storage retained by a configured pool, and bytes pinned by a
// configured cache (WithCache).
func WithMemoryLimit(bytes int64) Option {
	return func(o *options) { o.memLimit = bytes }
}

// WithDegradeToWindowed lets a fold that exceeds its WithMemoryLimit budget
// fall back down the degradation ladder instead of failing: first the
// packed quarter-space map (exact, half the bounding-box memory), then a
// windowed scan with windows (w1, w2) (the local-interaction screen; the
// memory-bounded mode of the GPU formulations). Result.Degradation records
// which rung fired. Without WithMemoryLimit this option has no effect.
func WithDegradeToWindowed(w1, w2 int) Option {
	return func(o *options) { o.degradeW1, o.degradeW2 = w1, w2 }
}

// EstimateBytes returns the F-table storage, in bytes, that a full fold of
// sequences with lengths n1 and n2 would allocate under the given options
// (only the memory map matters: WithPackedMemory halves it). Use it to
// budget before folding; Fold with WithMemoryLimit performs the same check
// internally.
func EstimateBytes(n1, n2 int, opts ...Option) int64 {
	o := buildOptions(opts)
	return ibpmax.EstimateBytes(n1, n2, o.cfg.Map)
}

// EstimateWindowedBytes returns the banded-table storage, in bytes, of a
// windowed scan over lengths n1, n2 with windows w1, w2.
func EstimateWindowedBytes(n1, n2, w1, w2 int) int64 {
	return ibpmax.EstimateWindowedBytes(n1, n2, w1, w2)
}

// FoldContext is Fold with cooperative cancellation, deadlines, memory
// budgeting and panic isolation.
//
// Cancellation: every schedule checks ctx at wavefront/triangle granularity
// (one triangle, row or row-tile of work per check), so cancellation
// latency is bounded by one in-flight task per worker — milliseconds even
// on large problems — and no goroutine outlives the call. On cancellation
// the partial table is discarded and ctx.Err() (context.Canceled or
// context.DeadlineExceeded) is returned.
//
// Memory budgeting: with WithMemoryLimit set, the table footprint is
// estimated analytically first. An over-budget fold either degrades (see
// WithDegradeToWindowed) or returns a *MemoryLimitError without allocating.
//
// Panic isolation: a panic on any solver worker is recovered and returned
// as a *PanicError instead of crashing the process.
//
// The background-context fast path is bit-identical to Fold: same table,
// same score, same traceback.
func FoldContext(ctx context.Context, seq1, seq2 string, opts ...Option) (*Result, error) {
	return buildOptions(opts).runFold(ctx, seq1, seq2)
}
