package bpmax

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// BatchItem is one sequence pair of a screening batch.
type BatchItem struct {
	// Name labels the pair in results (e.g. a FASTA header).
	Name string
	// Seq1, Seq2 are the two strands.
	Seq1, Seq2 string
}

// BatchResult is one completed (or failed) fold of a batch.
type BatchResult struct {
	Name string
	// Result is nil when Err is set.
	Result *Result
	// Gain is Score minus the two strands' independent single-strand
	// optima — the screening statistic that ranks true interactions above
	// incidental self-structure.
	Gain float32
	Err  error
}

// FoldBatch folds every pair concurrently (the embarrassingly parallel
// outer level of a target screen: distinct pairs share nothing). workers
// <= 0 selects GOMAXPROCS. Per-fold options apply to every item. Results
// come back in input order; individual failures are reported per item, not
// as a batch failure.
func FoldBatch(items []BatchItem, workers int, opts ...Option) []BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	out := make([]BatchResult, len(items))
	if len(items) == 0 {
		return out
	}
	// Run each fold single-threaded: the batch level already saturates the
	// workers, and nested parallelism would oversubscribe.
	foldOpts := append(append([]Option(nil), opts...), WithWorkers(1))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				it := items[i]
				out[i].Name = it.Name
				res, err := Fold(it.Seq1, it.Seq2, foldOpts...)
				if err != nil {
					out[i].Err = fmt.Errorf("%s: %w", it.Name, err)
					continue
				}
				out[i].Result = res
				s1, err1 := FoldSingle(it.Seq1, foldOpts...)
				s2, err2 := FoldSingle(it.Seq2, foldOpts...)
				if err1 == nil && err2 == nil {
					out[i].Gain = res.Score - s1.Score - s2.Score
				}
			}
		}()
	}
	for i := range items {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// RankByGain returns the successful results sorted by descending Gain
// (ties broken by Name for determinism). Failed items are omitted.
func RankByGain(results []BatchResult) []BatchResult {
	var ok []BatchResult
	for _, r := range results {
		if r.Err == nil && r.Result != nil {
			ok = append(ok, r)
		}
	}
	sort.Slice(ok, func(a, b int) bool {
		if ok[a].Gain != ok[b].Gain {
			return ok[a].Gain > ok[b].Gain
		}
		return ok[a].Name < ok[b].Name
	})
	return ok
}
