package bpmax

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"github.com/bpmax-go/bpmax/internal/fault"
)

// BatchItem is one sequence pair of a screening batch.
type BatchItem struct {
	// Name labels the pair in results (e.g. a FASTA header).
	Name string
	// Seq1, Seq2 are the two strands.
	Seq1, Seq2 string
}

// BatchResult is one completed (or failed) fold of a batch.
type BatchResult struct {
	Name string
	// Result is nil when the fold failed (Err then says why).
	Result *Result
	// Gain is Score minus the two strands' independent single-strand
	// optima — the screening statistic that ranks true interactions above
	// incidental self-structure. Both optima are read from the fold's own
	// S¹/S² substrate tables, so Gain costs nothing beyond the fold itself.
	Gain float32
	// Degradation echoes Result.Degradation for quick per-item status
	// reporting (DegradeNone when the item failed).
	Degradation Degradation
	Err         error
}

// batchBudget splits a global worker budget across concurrent batch items:
// conc items fold at once, each with perFold-way parallelism, so the total
// number of active workers never exceeds budget. Small batches get deeper
// per-fold parallelism instead of idle batch slots; large batches get one
// worker per item.
func batchBudget(budget, items int) (conc, perFold int) {
	conc = budget
	if conc > items {
		conc = items
	}
	if conc < 1 {
		conc = 1
	}
	perFold = budget / conc
	if perFold < 1 {
		perFold = 1
	}
	return conc, perFold
}

// FoldBatch folds every pair concurrently (the embarrassingly parallel
// outer level of a target screen: distinct pairs share nothing). workers
// <= 0 selects GOMAXPROCS. Per-fold options apply to every item. Results
// come back in input order; individual failures are reported per item, not
// as a batch failure. It is FoldBatchContext with a background context.
func FoldBatch(items []BatchItem, workers int, opts ...Option) []BatchResult {
	return FoldBatchContext(context.Background(), items, workers, opts...)
}

// FoldBatchContext is FoldBatch under a context: every per-item fold runs
// with ctx (so a deadline bounds the whole screen), items not yet started
// when ctx is cancelled are marked failed with ctx.Err() instead of being
// folded, and a panic while processing one item — in the fold or in the
// batch goroutine itself — fails that item only, never the batch.
//
// The workers argument is a global budget shared between the batch level
// and the per-fold level: conc = min(workers, len(items)) items fold
// concurrently, each with workers/conc-way parallelism, and when the folds
// are parallel they draw their helpers from one shared Engine of exactly
// that budget (the caller's via WithEngine, or a batch-scoped one). Batch
// concurrency times fold parallelism therefore cannot oversubscribe the
// machine, which the naive workers × WithWorkers product would.
func FoldBatchContext(ctx context.Context, items []BatchItem, workers int, opts ...Option) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchResult, len(items))
	if len(items) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	conc, perFold := batchBudget(workers, len(items))
	// The option set is parsed exactly once for the whole batch; workers
	// then fold each item through the same pre-parsed request, so per-item
	// cost excludes option closures, variant resolution and param building.
	rq := buildOptions(append(append([]Option(nil), opts...), WithWorkers(perFold)))
	if perFold > 1 && rq.cfg.Engine == nil {
		// Parallel per-item folds with no caller-supplied engine: give the
		// batch its own worker team sized to the budget. The engine caps
		// physical parallelism even when conc folds contend for helpers.
		e := NewEngine(workers)
		defer e.Close()
		rq.engine = e
		rq.cfg.Engine = e.e
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = foldBatchItem(ctx, items[i], rq)
			}
		}()
	}
	// Dispatch until done or cancelled; undispatched items fail fast with
	// the context's error rather than burning hours after a deadline.
	sent := len(items)
	for i := range items {
		select {
		case <-ctx.Done():
			sent = i
		case next <- i:
			continue
		}
		break
	}
	close(next)
	wg.Wait()
	for i := sent; i < len(items); i++ {
		out[i] = BatchResult{Name: items[i].Name, Err: fmt.Errorf("%s: %w", items[i].Name, ctx.Err())}
	}
	return out
}

// foldBatchItem folds one batch item and computes its gain statistic. Any
// panic escaping the fold machinery is recovered here so that one poisoned
// item cannot take down the worker (and with it the process).
func foldBatchItem(ctx context.Context, it BatchItem, rq request) (br BatchResult) {
	br.Name = it.Name
	defer func() {
		if r := recover(); r != nil {
			br = BatchResult{
				Name: it.Name,
				Err:  fmt.Errorf("%s: %w", it.Name, &PanicError{Value: r, Stack: debug.Stack()}),
			}
		}
	}()
	// Failpoint: the item dies before its fold — the "one bad item in a 10k
	// screen" failure. Error mode fails this item only; panic mode exercises
	// the recover above.
	if ferr := fault.Hit(fault.SiteBatchItem); ferr != nil {
		br.Err = fmt.Errorf("%s: %w", it.Name, ferr)
		return br
	}
	res, err := rq.runFold(ctx, it.Seq1, it.Seq2)
	if err != nil {
		br.Err = fmt.Errorf("%s: %w", it.Name, err)
		return br
	}
	br.Result = res
	br.Degradation = res.Degradation
	// The whole-strand single optima are the S-table corner cells the fold
	// already computed; no refolds. Partition folds rank by the ensemble
	// analogue: the log-partition gain of interacting over folding apart
	// (log Z_12 − log Z_1 − log Z_2, a log-Boltzmann-factor in kT units).
	if res.Algebra == AlgebraPartition {
		br.Gain = float32(res.LogZ - res.LogZ1 - res.LogZ2)
	} else {
		br.Gain = res.Score - res.SingleScore1(0, res.N1-1) - res.SingleScore2(0, res.N2-1)
	}
	return br
}

// RankByGain returns the successful results sorted by descending Gain
// (ties broken by Name, then by input order, for full determinism). Failed
// items are omitted.
func RankByGain(results []BatchResult) []BatchResult {
	var ok []BatchResult
	for _, r := range results {
		if r.Err == nil && r.Result != nil {
			ok = append(ok, r)
		}
	}
	sort.SliceStable(ok, func(a, b int) bool {
		if ok[a].Gain != ok[b].Gain {
			return ok[a].Gain > ok[b].Gain
		}
		return ok[a].Name < ok[b].Name
	})
	return ok
}
