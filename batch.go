package bpmax

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
)

// BatchItem is one sequence pair of a screening batch.
type BatchItem struct {
	// Name labels the pair in results (e.g. a FASTA header).
	Name string
	// Seq1, Seq2 are the two strands.
	Seq1, Seq2 string
}

// BatchResult is one completed (or failed) fold of a batch.
type BatchResult struct {
	Name string
	// Result is nil when the interaction fold itself failed (Err then says
	// why). It is set even when Err reports a later failure of the
	// single-strand folds behind Gain.
	Result *Result
	// Gain is Score minus the two strands' independent single-strand
	// optima — the screening statistic that ranks true interactions above
	// incidental self-structure. It is only meaningful when Err is nil.
	Gain float32
	// Degradation echoes Result.Degradation for quick per-item status
	// reporting (DegradeNone when the item failed).
	Degradation Degradation
	Err         error
}

// batchFoldSingle is the single-strand fold used for the gain statistic;
// a variable so tests can inject failures.
var batchFoldSingle = FoldSingleContext

// FoldBatch folds every pair concurrently (the embarrassingly parallel
// outer level of a target screen: distinct pairs share nothing). workers
// <= 0 selects GOMAXPROCS. Per-fold options apply to every item. Results
// come back in input order; individual failures are reported per item, not
// as a batch failure. It is FoldBatchContext with a background context.
func FoldBatch(items []BatchItem, workers int, opts ...Option) []BatchResult {
	return FoldBatchContext(context.Background(), items, workers, opts...)
}

// FoldBatchContext is FoldBatch under a context: every per-item fold runs
// with ctx (so a deadline bounds the whole screen), items not yet started
// when ctx is cancelled are marked failed with ctx.Err() instead of being
// folded, and a panic while processing one item — in the fold or in the
// batch goroutine itself — fails that item only, never the batch.
func FoldBatchContext(ctx context.Context, items []BatchItem, workers int, opts ...Option) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	out := make([]BatchResult, len(items))
	if len(items) == 0 {
		return out
	}
	// Run each fold single-threaded: the batch level already saturates the
	// workers, and nested parallelism would oversubscribe.
	foldOpts := append(append([]Option(nil), opts...), WithWorkers(1))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = foldBatchItem(ctx, items[i], foldOpts)
			}
		}()
	}
	// Dispatch until done or cancelled; undispatched items fail fast with
	// the context's error rather than burning hours after a deadline.
	sent := len(items)
	for i := range items {
		select {
		case <-ctx.Done():
			sent = i
		case next <- i:
			continue
		}
		break
	}
	close(next)
	wg.Wait()
	for i := sent; i < len(items); i++ {
		out[i] = BatchResult{Name: items[i].Name, Err: fmt.Errorf("%s: %w", items[i].Name, ctx.Err())}
	}
	return out
}

// foldBatchItem folds one batch item and computes its gain statistic. Any
// panic escaping the fold machinery is recovered here so that one poisoned
// item cannot take down the worker (and with it the process).
func foldBatchItem(ctx context.Context, it BatchItem, foldOpts []Option) (br BatchResult) {
	br.Name = it.Name
	defer func() {
		if r := recover(); r != nil {
			br = BatchResult{
				Name: it.Name,
				Err:  fmt.Errorf("%s: %w", it.Name, &PanicError{Value: r, Stack: debug.Stack()}),
			}
		}
	}()
	res, err := FoldContext(ctx, it.Seq1, it.Seq2, foldOpts...)
	if err != nil {
		br.Err = fmt.Errorf("%s: %w", it.Name, err)
		return br
	}
	br.Result = res
	br.Degradation = res.Degradation
	s1, err := batchFoldSingle(ctx, it.Seq1, foldOpts...)
	if err != nil {
		br.Err = fmt.Errorf("%s: single-strand fold of seq1: %w", it.Name, err)
		return br
	}
	s2, err := batchFoldSingle(ctx, it.Seq2, foldOpts...)
	if err != nil {
		br.Err = fmt.Errorf("%s: single-strand fold of seq2: %w", it.Name, err)
		return br
	}
	br.Gain = res.Score - s1.Score - s2.Score
	return br
}

// RankByGain returns the successful results sorted by descending Gain
// (ties broken by Name for determinism). Failed items are omitted.
func RankByGain(results []BatchResult) []BatchResult {
	var ok []BatchResult
	for _, r := range results {
		if r.Err == nil && r.Result != nil {
			ok = append(ok, r)
		}
	}
	sort.Slice(ok, func(a, b int) bool {
		if ok[a].Gain != ok[b].Gain {
			return ok[a].Gain > ok[b].Gain
		}
		return ok[a].Name < ok[b].Name
	})
	return ok
}
