# Tier-1 gate (what CI must keep green) plus the deeper checks.
#
# `make ci` runs the same stages the GitHub workflow runs as separate jobs;
# each stage is also reachable directly (`./ci.sh lint`, `./ci.sh smoke`, …).
# Regenerated artifacts go under results/generated/ (gitignored); committed
# baselines live directly under results/.

GO ?= go
ARTIFACTS := results/generated

.PHONY: all build test vet fmt lint race ci fuzz smoke bench bench-engine bench-baseline bench-gate serving-baseline

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l . cmd internal)"; if [ -n "$$out" ]; then echo "$$out"; exit 1; fi

# staticcheck when installed (the CI workflow pins and installs it);
# no-op otherwise so minimal containers still pass `make ci`.
lint: fmt
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping"; fi

# The parallel solver, the cancellation/panic-isolation machinery, and the
# HTTP front-end under the race detector. The full -race ./... run is slow
# on small hosts; this target covers every package that spawns goroutines.
race:
	$(GO) test -race ./internal/bpmax/ ./internal/nussinov/ ./internal/fourrussians/ . ./cmd/bpmax/ ./cmd/bpmaxd/

ci: build test vet lint race smoke

# Short fuzz pass over each fuzz target (regression corpus always runs as
# part of `make test`).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzFoldContextParity -fuzztime 20s .
	$(GO) test -run '^$$' -fuzz FuzzPooledParity -fuzztime 20s .
	$(GO) test -run '^$$' -fuzz FuzzFold -fuzztime 20s .
	$(GO) test -run '^$$' -fuzz FuzzFastaRoundTrip -fuzztime 10s .
	$(GO) test -run '^$$' -fuzz FuzzFourRussiansParity -fuzztime 20s ./internal/fourrussians/

# Server smoke: boot bpmaxd on a random port, replay the committed trace
# with bpmaxload -check, SIGTERM, assert a clean drain. Writes the serving
# replay artifact to $(ARTIFACTS)/BENCH_serving.json.
smoke:
	./ci.sh smoke

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the engine/pool + observability + caching + chaos steady-state
# tables (docs/PERFORMANCE.md, docs/OBSERVABILITY.md, docs/ROBUSTNESS.md) as
# a JSON artifact. The ext-chaos failpoints-off row gates the disabled-
# failpoint fast path: compiled-in but disarmed sites must cost nothing.
bench-engine:
	@mkdir -p $(ARTIFACTS)
	$(GO) run ./cmd/bpmaxbench -exp ext-engine,ext-metrics,ext-cache,ext-chaos,ext-substrate,ext-partition -json $(ARTIFACTS)/BENCH_engine.json

# Refresh the committed benchmark baseline that ci.sh gates against.
# Run this after an intentional performance change (or on new reference
# hardware) and commit the result.
bench-baseline:
	$(GO) run ./cmd/bpmaxbench -exp ext-engine,ext-metrics,ext-cache,ext-chaos,ext-substrate,ext-partition -repeats 5 -json results/BENCH_baseline.json

# Refresh the committed serving-replay baseline the smoke stage gates
# against: run the smoke once, then keep only the gated ext-serving table
# (the stage-attribution table varies with cache warmth, so it stays out of
# the baseline) and commit the result.
serving-baseline:
	REFRESH_SERVING_BASELINE=1 ./ci.sh smoke
	$(GO) run ./cmd/servingbaseline $(ARTIFACTS)/BENCH_serving.json results/BENCH_serving_baseline.json

# The full regression gate as CI runs it: selftest, regenerate, compare.
bench-gate:
	@mkdir -p $(ARTIFACTS)
	$(GO) run ./cmd/benchgate -baseline results/BENCH_baseline.json -selftest
	$(GO) run ./cmd/bpmaxbench -exp ext-engine,ext-metrics,ext-cache,ext-chaos,ext-substrate,ext-partition -repeats 3 -json $(ARTIFACTS)/BENCH_engine.json
	$(GO) run ./cmd/benchgate -baseline results/BENCH_baseline.json -current $(ARTIFACTS)/BENCH_engine.json
