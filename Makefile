# Tier-1 gate (what CI must keep green) plus the deeper checks.

GO ?= go

.PHONY: all build test vet race ci fuzz bench bench-engine

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The parallel solver and the cancellation/panic-isolation machinery under
# the race detector. The full -race ./... run is slow on small hosts; this
# target covers every package that spawns goroutines.
race:
	$(GO) test -race ./internal/bpmax/ ./internal/nussinov/ . ./cmd/bpmax/

ci: build test vet race

# Short fuzz pass over each fuzz target (regression corpus always runs as
# part of `make test`).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzFoldContextParity -fuzztime 20s .
	$(GO) test -run '^$$' -fuzz FuzzPooledParity -fuzztime 20s .
	$(GO) test -run '^$$' -fuzz FuzzFold -fuzztime 20s .
	$(GO) test -run '^$$' -fuzz FuzzFastaRoundTrip -fuzztime 10s .

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the engine/pool steady-state table (docs/PERFORMANCE.md) as a
# JSON artifact.
bench-engine:
	$(GO) run ./cmd/bpmaxbench -exp ext-engine -json BENCH_engine.json
