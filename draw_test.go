package bpmax

import (
	"strings"
	"testing"
)

func TestDrawDuplex(t *testing.T) {
	res, err := Fold("GGG", "CCC")
	if err != nil {
		t.Fatal(err)
	}
	out := res.Structure().Draw("GGG", "CCC")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("Draw produced %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "GGG") {
		t.Errorf("strand 1 missing: %q", lines[1])
	}
	// All three bonds are parallel rungs for the antiparallel duplex:
	// bond (0,0) connects column 0 to reversed column 2... for GGG×CCC the
	// bonds are (0,0),(1,1),(2,2) -> columns (0,2),(1,1),(2,0).
	if !strings.Contains(lines[2], "|") && !strings.Contains(lines[2], "\\") {
		t.Errorf("no bond markers in rung line %q:\n%s", lines[2], out)
	}
	// Strand 2 is displayed reversed (CCC is palindromic; check the label).
	if !strings.Contains(lines[3], "reversed") {
		t.Errorf("strand 2 line missing reversal note: %q", lines[3])
	}
}

func TestDrawHandlesUnevenLengths(t *testing.T) {
	res, err := Fold("GG", "CCCCCC")
	if err != nil {
		t.Fatal(err)
	}
	out := res.Structure().Draw("GG", "CCCCCC")
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if len(line) == 0 {
			t.Errorf("line %d empty:\n%s", i, out)
		}
	}
}

func TestDrawAntiparallelRungs(t *testing.T) {
	// A perfectly antiparallel duplex: GGGG × CCCC bonds (i, i) map to
	// display columns (i, n-1-i); only the middle columns align when n is
	// even, so expect a mix of '\' and '/' markers plus '|' never needed.
	res, err := Fold("GGGG", "CCCC")
	if err != nil {
		t.Fatal(err)
	}
	st := res.Structure()
	if len(st.Inter) != 4 {
		t.Skipf("optimal structure not a pure duplex: %+v", st)
	}
	out := st.Draw("GGGG", "CCCC")
	rung := strings.Split(out, "\n")[2]
	if !strings.ContainsAny(rung, `\/|`) {
		t.Errorf("no rungs rendered: %q", rung)
	}
}
