package bpmax

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/bpmax-go/bpmax/internal/rna"
)

// substrateAlgorithms enumerates every public substrate choice.
var substrateAlgorithms = []SubstrateAlgorithm{SubstrateAuto, SubstrateClassic, SubstrateFourRussians}

// TestSubstrateAlgorithmFoldParity pins the public contract of
// WithSubstrateAlgorithm: every choice yields the same score and the same
// traceback on an interaction fold, for integer and non-integer models
// alike (the latter silently falls back to the classic fill).
func TestSubstrateAlgorithmFoldParity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	seq1 := rna.Random(rng, 8).String()
	seq2 := rna.Random(rng, 256).String() // above the Auto crossover
	weights := []Weights{
		{},                           // basepair: integer-bounded
		{Unit: true},                 // unit: integer-bounded
		{GC: 2.5, AU: 1.25, GU: 0.5}, // fractional: classic everywhere
	}
	for _, w := range weights {
		base, err := Fold(seq1, seq2, WithWeights(w), WithSubstrateAlgorithm(SubstrateClassic))
		if err != nil {
			t.Fatalf("classic fold: %v", err)
		}
		baseSt := base.Structure()
		for _, a := range substrateAlgorithms {
			res, err := Fold(seq1, seq2, WithWeights(w), WithSubstrateAlgorithm(a))
			if err != nil {
				t.Fatalf("%s fold: %v", a, err)
			}
			if res.Score != base.Score {
				t.Fatalf("weights %+v: %s score %v != classic %v", w, a, res.Score, base.Score)
			}
			st := res.Structure()
			if st.Bracket1 != baseSt.Bracket1 || st.Bracket2 != baseSt.Bracket2 {
				t.Fatalf("weights %+v: %s structure differs from classic", w, a)
			}
		}
	}
}

// TestSubstrateAlgorithmSingleParity covers the single-strand entry point,
// which routes through the pipeline's parallel context build.
func TestSubstrateAlgorithmSingleParity(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	seq := rna.Random(rng, 500).String()
	base, err := FoldSingle(seq, WithSubstrateAlgorithm(SubstrateClassic))
	if err != nil {
		t.Fatalf("classic: %v", err)
	}
	for _, a := range substrateAlgorithms {
		res, err := FoldSingle(seq, WithSubstrateAlgorithm(a))
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if res.Score != base.Score || res.Bracket != base.Bracket {
			t.Fatalf("%s: score/bracket differ from classic (%v vs %v)", a, res.Score, base.Score)
		}
	}
}

// TestSubstrateAlgorithmCacheSharing folds with one algorithm, then serves
// the substrate from cache under another: bit-identical tables mean the
// cache key carries no algorithm component, so entries must be shared.
func TestSubstrateAlgorithmCacheSharing(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	seq1 := rna.Random(rng, 8).String()
	seq2 := rna.Random(rng, 220).String()
	c := NewCache(CacheConfig{DisableResults: true})
	cold, err := Fold(seq1, seq2, WithCache(c), WithSubstrateAlgorithm(SubstrateFourRussians))
	if err != nil {
		t.Fatalf("cold fold: %v", err)
	}
	warm, err := Fold(seq1, seq2, WithCache(c), WithSubstrateAlgorithm(SubstrateClassic))
	if err != nil {
		t.Fatalf("warm fold: %v", err)
	}
	if warm.Score != cold.Score {
		t.Fatalf("warm score %v != cold %v", warm.Score, cold.Score)
	}
	st := c.Stats()
	if st.SubstrateHits == 0 {
		t.Fatalf("classic request missed substrates built by four-russians: %+v", st)
	}
}

// TestSubstrateAlgorithmUnknown pins the validation error on every entry
// point that builds substrates.
func TestSubstrateAlgorithmUnknown(t *testing.T) {
	bad := WithSubstrateAlgorithm("quantum")
	if _, err := Fold("GGG", "CCC", bad); err == nil || !strings.Contains(err.Error(), "unknown substrate algorithm") {
		t.Fatalf("Fold err = %v", err)
	}
	if _, err := FoldSingle("GGGAAACCC", bad); err == nil || !strings.Contains(err.Error(), "unknown substrate algorithm") {
		t.Fatalf("FoldSingle err = %v", err)
	}
	if _, err := ScanWindowed("GGGAAACCC", "GGGUUUCCC", 4, 4, bad); err == nil || !strings.Contains(err.Error(), "unknown substrate algorithm") {
		t.Fatalf("ScanWindowed err = %v", err)
	}
}
