package bpmax

// One testing.B benchmark per paper artifact (see DESIGN.md's
// per-experiment index). Each reports a gflops metric computed from the
// analytic max-plus operation counts so `go test -bench` output can be
// read against the paper's figures directly. cmd/bpmaxbench runs the same
// experiments at larger scales with aligned-table output.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	ibpmax "github.com/bpmax-go/bpmax/internal/bpmax"
	"github.com/bpmax-go/bpmax/internal/maxplus"
	"github.com/bpmax-go/bpmax/internal/rna"
	"github.com/bpmax-go/bpmax/internal/roofline"
	"github.com/bpmax-go/bpmax/internal/score"
)

func benchProblem(b *testing.B, n1, n2 int) *ibpmax.Problem {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	p, err := ibpmax.NewProblem(rna.Random(rng, n1), rna.Random(rng, n2), score.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func reportGFLOPS(b *testing.B, flopsPerOp int64) {
	b.Helper()
	b.ReportMetric(float64(flopsPerOp)*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
}

// BenchmarkMicroMaxPlus is Figure 12 / Algorithm 3: the streaming
// Y = max(a+X, Y) kernel at an L1-resident chunk.
func BenchmarkMicroMaxPlus(b *testing.B) {
	b.ReportAllocs()
	const chunk = 4096
	x := make([]float32, chunk)
	y := make([]float32, chunk)
	for i := range x {
		x[i] = float32(i % 83)
		y[i] = float32(i % 89)
	}
	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			maxplus.Accumulate(y, x, float32(i%7))
		}
		reportGFLOPS(b, chunk*maxplus.FlopsPerElement)
	})
	b.Run("unrolled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			maxplus.Accumulate8(y, x, float32(i%7))
		}
		reportGFLOPS(b, chunk*maxplus.FlopsPerElement)
	})
	b.Run("gather", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			maxplus.DotMaxPlusStride(x, y, 1)
		}
		reportGFLOPS(b, chunk*maxplus.FlopsPerElement)
	})
}

// uniqueThreads deduplicates a thread-count list (on few-core hosts the
// {1, 2, cores, 2·cores} sweep collides).
func uniqueThreads(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if x >= 1 && !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// BenchmarkMicroThreads is Figure 12's thread sweep.
func BenchmarkMicroThreads(b *testing.B) {
	b.ReportAllocs()
	cores := runtime.GOMAXPROCS(0)
	for _, th := range uniqueThreads([]int{1, 2, cores, 2 * cores}) {
		b.Run(fmt.Sprintf("threads=%d", th), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				r := roofline.MeasureStream(th, 4096, 200, false)
				total += r.GFLOPS
			}
			b.ReportMetric(total/float64(b.N), "gflops")
		})
	}
}

// BenchmarkDoubleMaxPlus is Figures 13/14 and Table I: the standalone
// double max-plus system under every schedule.
func BenchmarkDoubleMaxPlus(b *testing.B) {
	b.ReportAllocs()
	p := benchProblem(b, 12, 64)
	flops := ibpmax.DMPFlops(12, 64)
	for _, v := range ibpmax.DMPVariants {
		b.Run(v.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ibpmax.SolveDMP(p, v, ibpmax.Config{})
			}
			reportGFLOPS(b, flops)
		})
	}
}

// BenchmarkBPMaxVariants is Figures 1/15/16: the full BPMax fill under
// every schedule.
func BenchmarkBPMaxVariants(b *testing.B) {
	b.ReportAllocs()
	p := benchProblem(b, 12, 48)
	flops := ibpmax.BPMaxFlops(12, 48)
	for _, v := range ibpmax.Variants {
		b.Run(v.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ibpmax.Solve(p, v, ibpmax.Config{})
			}
			reportGFLOPS(b, flops)
		})
	}
}

// BenchmarkTiledThreads is Figure 17: worker scaling of the tiled double
// max-plus, including past the physical core count.
func BenchmarkTiledThreads(b *testing.B) {
	b.ReportAllocs()
	p := benchProblem(b, 12, 96)
	flops := ibpmax.DMPFlops(12, 96)
	cores := runtime.GOMAXPROCS(0)
	for _, th := range uniqueThreads([]int{1, 2, cores, 2 * cores}) {
		b.Run(fmt.Sprintf("threads=%d", th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ibpmax.SolveDMP(p, ibpmax.DMPTiled, ibpmax.Config{Workers: th})
			}
			reportGFLOPS(b, flops)
		})
	}
}

// BenchmarkTileShapes is Figure 18: tile-shape sensitivity of the double
// max-plus (cubic vs j2-untiled shapes).
func BenchmarkTileShapes(b *testing.B) {
	b.ReportAllocs()
	p := benchProblem(b, 12, 96)
	flops := ibpmax.DMPFlops(12, 96)
	shapes := []struct {
		name       string
		ti, tk, tj int
	}{
		{"8x8x8", 8, 8, 8},
		{"16x16x16", 16, 16, 16},
		{"32x4xN", 32, 4, 0},
		{"64x16xN", 64, 16, 0},
		{"128x8xN", 128, 8, 0},
	}
	for _, sh := range shapes {
		b.Run(sh.name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := ibpmax.Config{TileI2: sh.ti, TileK2: sh.tk, TileJ2: sh.tj}
			for i := 0; i < b.N; i++ {
				ibpmax.SolveDMP(p, ibpmax.DMPTiled, cfg)
			}
			reportGFLOPS(b, flops)
		})
	}
}

// BenchmarkMemoryMaps is the Fig 10 ablation: bounding-box vs packed
// quarter-space inner maps.
func BenchmarkMemoryMaps(b *testing.B) {
	b.ReportAllocs()
	p := benchProblem(b, 12, 48)
	flops := ibpmax.BPMaxFlops(12, 48)
	for _, kind := range []ibpmax.MapKind{ibpmax.MapBox, ibpmax.MapPacked} {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ibpmax.Solve(p, ibpmax.VariantHybridTiled, ibpmax.Config{Map: kind})
			}
			reportGFLOPS(b, flops)
		})
	}
}

// BenchmarkScheduling is the OMP-dynamic-vs-static ablation (paper:
// dynamic wins under the triangles' imbalance).
func BenchmarkScheduling(b *testing.B) {
	b.ReportAllocs()
	p := benchProblem(b, 12, 48)
	flops := ibpmax.BPMaxFlops(12, 48)
	for _, static := range []bool{false, true} {
		name := "dynamic"
		if static {
			name = "static"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := ibpmax.Config{StaticSched: static}
			for i := 0; i < b.N; i++ {
				ibpmax.Solve(p, ibpmax.VariantHybridTiled, cfg)
			}
			reportGFLOPS(b, flops)
		})
	}
}

// BenchmarkUnroll is the streaming-kernel unroll ablation.
func BenchmarkUnroll(b *testing.B) {
	b.ReportAllocs()
	p := benchProblem(b, 12, 64)
	flops := ibpmax.DMPFlops(12, 64)
	for _, unroll := range []bool{false, true} {
		name := "plain"
		if unroll {
			name = "unrolled8"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := ibpmax.Config{Unroll: unroll}
			for i := 0; i < b.N; i++ {
				ibpmax.SolveDMP(p, ibpmax.DMPTiled, cfg)
			}
			reportGFLOPS(b, flops)
		})
	}
}

// BenchmarkRegisterTile is the future-work register-tiling ablation: the
// dual-row kernel halves B-row stream traffic in the tiled double
// max-plus.
func BenchmarkRegisterTile(b *testing.B) {
	b.ReportAllocs()
	p := benchProblem(b, 12, 96)
	flops := ibpmax.DMPFlops(12, 96)
	for _, reg := range []bool{false, true} {
		name := "rowwise"
		if reg {
			name = "dualrow"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := ibpmax.Config{RegisterTile: reg}
			for i := 0; i < b.N; i++ {
				ibpmax.SolveDMP(p, ibpmax.DMPTiled, cfg)
			}
			reportGFLOPS(b, flops)
		})
	}
}

// BenchmarkMemoryPhases is the Phase II vs Phase III memory-map ablation:
// separate accumulator storage (+copy) vs reductions sharing F's memory.
func BenchmarkMemoryPhases(b *testing.B) {
	b.ReportAllocs()
	p := benchProblem(b, 12, 48)
	flops := ibpmax.BPMaxFlops(12, 48)
	for _, scratch := range []bool{false, true} {
		name := "phase3-shared"
		if scratch {
			name = "phase2-scratch"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := ibpmax.Config{ScratchAccum: scratch}
			for i := 0; i < b.N; i++ {
				ibpmax.Solve(p, ibpmax.VariantHybrid, cfg)
			}
			reportGFLOPS(b, flops)
		})
	}
}

// BenchmarkWindowed measures the banded scan (the GPU comparator's
// formulation) against the full fill at the same lengths.
func BenchmarkWindowed(b *testing.B) {
	b.ReportAllocs()
	p := benchProblem(b, 12, 96)
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ibpmax.Solve(p, ibpmax.VariantHybridTiled, ibpmax.Config{})
		}
	})
	b.Run("window=16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ibpmax.SolveWindowed(p, 12, 16, ibpmax.Config{})
		}
	})
}

// BenchmarkFoldAPI measures the public entry point end to end (S tables,
// fill, metadata).
func BenchmarkFoldAPI(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(9))
	s1 := rna.Random(rng, 12).String()
	s2 := rna.Random(rng, 48).String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fold(s1, s2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFoldBatchSteadyState measures the screening steady state — the
// fold → score → release cycle FoldBatch performs per item — with fresh
// per-fold allocation versus a shared engine and pool. The pooled
// sub-benchmark is PR 2's acceptance gate: after the warm-up fold its
// allocs/op must be O(1), at least 90% below the fresh sub-benchmark, with
// no throughput regression.
func BenchmarkFoldBatchSteadyState(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	s1 := rna.Random(rng, 12).String()
	s2 := rna.Random(rng, 48).String()
	cycle := func(b *testing.B, opts ...Option) {
		res, err := Fold(s1, s2, opts...)
		if err != nil {
			b.Fatal(err)
		}
		res.Release()
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cycle(b)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		e := NewEngine(4)
		defer e.Close()
		opts := []Option{WithEngine(e), WithPool(NewPool()), WithWorkers(4)}
		cycle(b, opts...) // warm the pool before counting
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cycle(b, opts...)
		}
	})
	b.Run("pooled+metrics", func(b *testing.B) {
		// The observability acceptance gate: enabling metrics must add zero
		// allocations and <5% time to the pooled steady state.
		b.ReportAllocs()
		e := NewEngine(4)
		defer e.Close()
		m := NewMetrics()
		opts := []Option{WithEngine(e), WithPool(NewPool()), WithWorkers(4), WithMetrics(m)}
		cycle(b, opts...) // warm the pool before counting
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cycle(b, opts...)
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		e := NewEngine(4)
		defer e.Close()
		opts := []Option{WithEngine(e), WithPool(NewPool())}
		items := []BatchItem{
			{Name: "a", Seq1: s1, Seq2: s2},
			{Name: "b", Seq1: s2, Seq2: s1},
		}
		release := func(rs []BatchResult) {
			for _, r := range rs {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
				r.Result.Release()
			}
		}
		release(FoldBatch(items, 2, opts...))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			release(FoldBatch(items, 2, opts...))
		}
	})
}

// BenchmarkFoldBatchSharedQuery is the caching acceptance gate: a screening
// loop that folds one query strand against a rotating set of targets, cold
// (no cache) versus served by the substrate layer versus served whole from
// the result layer. The warm-results sub-benchmark must run at least 1.3x
// faster than cold (in practice it skips the entire solve, so the margin is
// far larger); warm-substrate shows the S-table share alone.
func BenchmarkFoldBatchSharedQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	query := rna.Random(rng, 48).String()
	targets := make([]string, 16)
	for i := range targets {
		targets[i] = rna.Random(rng, 12).String()
	}
	cycle := func(b *testing.B, i int, opts []Option) {
		res, err := Fold(targets[i%len(targets)], query, opts...)
		if err != nil {
			b.Fatal(err)
		}
		res.Release()
	}
	run := func(b *testing.B, cache *Cache) {
		b.ReportAllocs()
		e := NewEngine(4)
		defer e.Close()
		opts := []Option{WithEngine(e), WithPool(NewPool()), WithWorkers(4)}
		if cache != nil {
			opts = append(opts, WithCache(cache))
		}
		// Warm the pool — and, when present, the cache — over the full
		// target rotation before counting.
		for i := range targets {
			cycle(b, i, opts)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cycle(b, i, opts)
		}
	}
	b.Run("cold", func(b *testing.B) { run(b, nil) })
	b.Run("warm-substrate", func(b *testing.B) {
		run(b, NewCache(CacheConfig{DisableResults: true}))
	})
	b.Run("warm-results", func(b *testing.B) {
		run(b, NewCache(CacheConfig{}))
	})
}

// BenchmarkAdmissionContention measures the admission gate's overhead on a
// contended steady state: GOMAXPROCS goroutines folding through a
// half-width gate, versus the same workload ungated. The gate's cost per
// fold (one mutex + one queue park/wake) must stay far below fill time.
func BenchmarkAdmissionContention(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	s1 := rna.Random(rng, 12).String()
	s2 := rna.Random(rng, 48).String()
	run := func(b *testing.B, gate *Admission) {
		b.ReportAllocs()
		pool := NewPool()
		opts := []Option{WithPool(pool), WithWorkers(1)}
		if gate != nil {
			opts = append(opts, WithAdmission(gate))
		}
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				res, err := Fold(s1, s2, opts...)
				if err != nil {
					b.Error(err)
					return
				}
				res.Release()
			}
		})
	}
	b.Run("ungated", func(b *testing.B) { run(b, nil) })
	b.Run("gated", func(b *testing.B) {
		width := runtime.GOMAXPROCS(0)/2 + 1
		run(b, NewAdmission(AdmissionConfig{MaxConcurrent: width}))
	})
}
