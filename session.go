// Session: the serving facade over the fold pipeline.
//
// A Session parses its options once and binds the long-lived serving
// components — engine, pool, cache, admission gate, metrics — into one
// handle whose methods mirror the package-level entry points. It is the
// intended shape for a process that serves folds continuously: construct
// one Session at startup, share it between goroutines, watch Stats,
// Shutdown (or Close) on the way out.
//
// Every method honors a per-request trace carried in its context
// (internal/trace): the pipeline records queue wait, cache outcomes,
// substrate and fill phases into it with no per-method plumbing, and a
// context without a trace costs nothing. cmd/bpmaxd attaches one per HTTP
// request; library callers normally never construct one. A FoldBatch's
// items share the batch context's single trace — its stage stats aggregate
// across the whole batch.

package bpmax

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrSessionClosed is returned by every Session method invoked after Close
// or Shutdown marked the session closed. Match it with errors.Is.
var ErrSessionClosed = errors.New("bpmax: session closed")

// Session runs folds through one pre-parsed option set and one set of
// serving components. Unless the options supply them, a Session creates and
// owns its engine (persistent workers) and pool (recycled fold state) —
// the two components every serving process wants; caching (WithCache) and
// admission control (WithAdmission) are policy decisions and are attached
// only when configured. All methods are safe for concurrent use.
type Session struct {
	rq   request
	opts []Option

	engine    *Engine
	pool      *Pool
	cache     *Cache
	admission *Admission
	metrics   *Metrics

	ownedEngine bool
	ownedPool   bool

	// mu guards closed and orders it against inflight.Add: once markClosed
	// sets closed under mu, no new fold can register, so inflight.Wait
	// observes a monotonically draining count.
	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup
	released atomic.Bool
}

// SessionStats aggregates every component's snapshot in one JSON-ready
// struct; sections for components the session does not have are nil.
type SessionStats struct {
	Engine    *EngineStats     `json:"engine,omitempty"`
	Pool      *PoolStats       `json:"pool,omitempty"`
	Cache     *CacheStats      `json:"cache,omitempty"`
	Admission *AdmissionStats  `json:"admission,omitempty"`
	Metrics   *MetricsSnapshot `json:"metrics,omitempty"`
}

// NewSession parses opts once and returns a ready session. An unknown
// variant fails here, not on first use. When opts carry no WithEngine, the
// session starts an engine sized by WithWorkers (GOMAXPROCS by default) and
// closes it on shutdown; when they carry no WithPool, it creates a pool and
// trims it on shutdown. Caller-supplied components are used but never
// closed or trimmed by the session.
func NewSession(opts ...Option) (*Session, error) {
	rq := buildOptions(opts)
	if rq.verr != nil {
		return nil, rq.verr
	}
	s := &Session{opts: append([]Option(nil), opts...)}
	if rq.engine == nil {
		s.engine = NewEngine(rq.cfg.Workers)
		s.ownedEngine = true
		rq.engine = s.engine
		rq.cfg.Engine = s.engine.e
		s.opts = append(s.opts, WithEngine(s.engine))
	} else {
		s.engine = rq.engine
	}
	if rq.pool == nil {
		p := NewPool()
		s.pool = p
		s.ownedPool = true
		rq.pool = p
		rq.cfg.Pool = p.p
		s.opts = append(s.opts, WithPool(p))
	} else {
		s.pool = rq.pool
	}
	s.cache = rq.cache
	s.admission = rq.admission
	s.metrics = rq.metrics
	s.rq = rq
	return s, nil
}

// begin registers one in-flight call, or reports ErrSessionClosed once the
// session stopped admitting. A nil error must be paired with one end.
func (s *Session) begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	s.inflight.Add(1)
	return nil
}

func (s *Session) end() { s.inflight.Done() }

// Fold computes the BPMax interaction of two strands through the session's
// pipeline; see FoldContext for the cancellation, budgeting and degradation
// contract. A closed session returns ErrSessionClosed.
func (s *Session) Fold(ctx context.Context, seq1, seq2 string) (*Result, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	return s.rq.runFold(ctx, seq1, seq2)
}

// FoldWith is Fold with per-request option overrides layered on top of the
// session's base options — the serving-layer route for per-request algebra
// (WithAlgebra, WithKT) or schedule selection. The base options carry the
// session's engine, pool, cache and admission gate, so an overridden fold
// still runs through the same components; with no extras it is exactly
// Fold, including the once-per-session option parse.
func (s *Session) FoldWith(ctx context.Context, seq1, seq2 string, extra ...Option) (*Result, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	if len(extra) == 0 {
		return s.rq.runFold(ctx, seq1, seq2)
	}
	rq := buildOptions(append(append([]Option(nil), s.opts...), extra...))
	return rq.runFold(ctx, seq1, seq2)
}

// FoldBatch folds every pair through the session's components; see
// FoldBatchContext for the worker-budget and failure contract. On a closed
// session every item fails with ErrSessionClosed.
func (s *Session) FoldBatch(ctx context.Context, items []BatchItem, workers int) []BatchResult {
	if err := s.begin(); err != nil {
		out := make([]BatchResult, len(items))
		for i, it := range items {
			out[i] = BatchResult{Name: it.Name, Err: err}
		}
		return out
	}
	defer s.end()
	return FoldBatchContext(ctx, items, workers, s.opts...)
}

// FoldBatchWith is FoldBatch with per-request option overrides shared by
// every item of the batch; see FoldWith for the layering contract.
func (s *Session) FoldBatchWith(ctx context.Context, items []BatchItem, workers int, extra ...Option) []BatchResult {
	if err := s.begin(); err != nil {
		out := make([]BatchResult, len(items))
		for i, it := range items {
			out[i] = BatchResult{Name: it.Name, Err: err}
		}
		return out
	}
	defer s.end()
	if len(extra) == 0 {
		return FoldBatchContext(ctx, items, workers, s.opts...)
	}
	return FoldBatchContext(ctx, items, workers, append(append([]Option(nil), s.opts...), extra...)...)
}

// ScanWindowed runs a windowed (banded) scan through the session's
// pipeline; see ScanWindowedContext. A closed session returns
// ErrSessionClosed.
func (s *Session) ScanWindowed(ctx context.Context, seq1, seq2 string, w1, w2 int) (*WindowResult, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	return s.rq.runWindowed(ctx, seq1, seq2, w1, w2)
}

// FoldSingle folds one strand alone through the session's pipeline; see
// FoldSingleContext. A closed session returns ErrSessionClosed.
func (s *Session) FoldSingle(ctx context.Context, seq string) (*SingleResult, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	return s.rq.runSingle(ctx, seq)
}

// SingleEnsemble computes the single-strand ensemble signal through the
// session's pipeline; see the package-level SingleEnsemble. A closed
// session returns ErrSessionClosed.
func (s *Session) SingleEnsemble(seq string, kT float64) (*EnsembleResult, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	return s.rq.runEnsemble(seq, kT)
}

// Stats snapshots every component the session holds. Safe to call
// concurrently with running folds, and still available after Close.
func (s *Session) Stats() SessionStats {
	var st SessionStats
	if s.engine != nil {
		es := s.engine.Stats()
		st.Engine = &es
	}
	if s.pool != nil {
		ps := s.pool.Stats()
		st.Pool = &ps
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		st.Cache = &cs
	}
	if s.admission != nil {
		as := s.admission.Stats()
		st.Admission = &as
	}
	if s.metrics != nil {
		ms := s.metrics.Snapshot()
		st.Metrics = &ms
	}
	return st
}

// markClosed stops admitting: every method entered after it returns
// ErrSessionClosed. Idempotent.
func (s *Session) markClosed() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// release frees the owned components exactly once: the engine the session
// started is closed, the pool it created is trimmed back to zero retention.
func (s *Session) release() {
	if !s.released.CompareAndSwap(false, true) {
		return
	}
	if s.ownedEngine {
		s.engine.Close()
	}
	if s.ownedPool {
		s.pool.Trim()
	}
}

// Shutdown drains the session gracefully: it stops admitting new calls
// (they return ErrSessionClosed immediately), waits for every in-flight
// call to finish, then releases the owned components — the engine the
// session started is closed and the pool it created is trimmed. If ctx ends
// before the drain completes, Shutdown returns ctx.Err() with the session
// closed to new work but the components not yet released — in-flight folds
// keep their engine and pool; call Shutdown (or Close) again to finish the
// release once they drain. Shutdown is idempotent.
func (s *Session) Shutdown(ctx context.Context) error {
	s.markClosed()
	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-drained:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.release()
	return nil
}

// Close is the non-blocking shutdown: it stops admitting (methods return
// ErrSessionClosed), closes the engine the session started, and trims the
// pool it created back to zero retained bytes. Unlike Shutdown it does not
// wait for in-flight calls — they stay correct, falling back to per-fold
// goroutines exactly as Engine.Close documents, with the pool re-warming
// behind them. Close is idempotent.
func (s *Session) Close() {
	s.markClosed()
	s.release()
}
