// Session: the serving facade over the fold pipeline.
//
// A Session parses its options once and binds the long-lived serving
// components — engine, pool, cache, admission gate, metrics — into one
// handle whose methods mirror the package-level entry points. It is the
// intended shape for a process that serves folds continuously: construct
// one Session at startup, share it between goroutines, watch Stats, Close
// on shutdown.

package bpmax

import (
	"context"
	"sync/atomic"
)

// Session runs folds through one pre-parsed option set and one set of
// serving components. Unless the options supply them, a Session creates and
// owns its engine (persistent workers) and pool (recycled fold state) —
// the two components every serving process wants; caching (WithCache) and
// admission control (WithAdmission) are policy decisions and are attached
// only when configured. All methods are safe for concurrent use.
type Session struct {
	rq   request
	opts []Option

	engine    *Engine
	pool      *Pool
	cache     *Cache
	admission *Admission
	metrics   *Metrics

	ownedEngine bool
	closed      atomic.Bool
}

// SessionStats aggregates every component's snapshot in one JSON-ready
// struct; sections for components the session does not have are nil.
type SessionStats struct {
	Engine    *EngineStats     `json:"engine,omitempty"`
	Pool      *PoolStats       `json:"pool,omitempty"`
	Cache     *CacheStats      `json:"cache,omitempty"`
	Admission *AdmissionStats  `json:"admission,omitempty"`
	Metrics   *MetricsSnapshot `json:"metrics,omitempty"`
}

// NewSession parses opts once and returns a ready session. An unknown
// variant fails here, not on first use. When opts carry no WithEngine, the
// session starts an engine sized by WithWorkers (GOMAXPROCS by default) and
// closes it in Close; when they carry no WithPool, it creates a pool. A
// caller-supplied engine is used but never closed by the session.
func NewSession(opts ...Option) (*Session, error) {
	rq := buildOptions(opts)
	if rq.verr != nil {
		return nil, rq.verr
	}
	s := &Session{opts: append([]Option(nil), opts...)}
	if rq.engine == nil {
		s.engine = NewEngine(rq.cfg.Workers)
		s.ownedEngine = true
		rq.engine = s.engine
		rq.cfg.Engine = s.engine.e
		s.opts = append(s.opts, WithEngine(s.engine))
	} else {
		s.engine = rq.engine
	}
	if rq.pool == nil {
		p := NewPool()
		s.pool = p
		rq.pool = p
		rq.cfg.Pool = p.p
		s.opts = append(s.opts, WithPool(p))
	} else {
		s.pool = rq.pool
	}
	s.cache = rq.cache
	s.admission = rq.admission
	s.metrics = rq.metrics
	s.rq = rq
	return s, nil
}

// Fold computes the BPMax interaction of two strands through the session's
// pipeline; see FoldContext for the cancellation, budgeting and degradation
// contract.
func (s *Session) Fold(ctx context.Context, seq1, seq2 string) (*Result, error) {
	return s.rq.runFold(ctx, seq1, seq2)
}

// FoldBatch folds every pair through the session's components; see
// FoldBatchContext for the worker-budget and failure contract.
func (s *Session) FoldBatch(ctx context.Context, items []BatchItem, workers int) []BatchResult {
	return FoldBatchContext(ctx, items, workers, s.opts...)
}

// ScanWindowed runs a windowed (banded) scan through the session's
// pipeline; see ScanWindowedContext.
func (s *Session) ScanWindowed(ctx context.Context, seq1, seq2 string, w1, w2 int) (*WindowResult, error) {
	return s.rq.runWindowed(ctx, seq1, seq2, w1, w2)
}

// FoldSingle folds one strand alone through the session's pipeline; see
// FoldSingleContext.
func (s *Session) FoldSingle(ctx context.Context, seq string) (*SingleResult, error) {
	return s.rq.runSingle(ctx, seq)
}

// SingleEnsemble computes the single-strand ensemble signal through the
// session's pipeline; see the package-level SingleEnsemble.
func (s *Session) SingleEnsemble(seq string, kT float64) (*EnsembleResult, error) {
	return s.rq.runEnsemble(seq, kT)
}

// Stats snapshots every component the session holds. Safe to call
// concurrently with running folds.
func (s *Session) Stats() SessionStats {
	var st SessionStats
	if s.engine != nil {
		es := s.engine.Stats()
		st.Engine = &es
	}
	if s.pool != nil {
		ps := s.pool.Stats()
		st.Pool = &ps
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		st.Cache = &cs
	}
	if s.admission != nil {
		as := s.admission.Stats()
		st.Admission = &as
	}
	if s.metrics != nil {
		ms := s.metrics.Snapshot()
		st.Metrics = &ms
	}
	return st
}

// Close releases the session's owned components (the engine it started, if
// any) and trims the pool it created. Folds in flight must finish first;
// folding through a closed session stays correct but falls back to
// per-fold goroutines, like Engine.Close documents. Close is idempotent.
func (s *Session) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	if s.ownedEngine {
		s.engine.Close()
	}
}
