package bpmax

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadFasta(t *testing.T) {
	recs, err := ReadFasta(strings.NewReader(">a\ngggt\n>b\nCCCA\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != "GGGU" || recs[1].Name != "b" {
		t.Errorf("records = %+v", recs)
	}
	if _, err := ReadFasta(strings.NewReader(">a\nGGN\n"), 0); err == nil {
		t.Error("strict mode accepted N")
	}
	if _, err := ReadFasta(strings.NewReader(">a\nGGN\n"), 7); err != nil {
		t.Errorf("resolving mode rejected N: %v", err)
	}
}

func TestLoadFastaAndPairs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pairs.fa")
	if err := os.WriteFile(path, []byte(">s1\nGGG\n>t1\nCCC\n>s2\nAAA\n>t2\nUUU\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadFasta(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	items, err := PairsFromFasta(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[0].Name != "s1 x t1" {
		t.Errorf("items = %+v", items)
	}
	// End-to-end: batch-fold the loaded pairs.
	results := FoldBatch(items, 2)
	if results[0].Err != nil || results[0].Result.Score != 9 {
		t.Errorf("pair 1 = %+v", results[0])
	}
	if results[1].Err != nil || results[1].Result.Score != 6 { // AAA x UUU: three AU bonds
		t.Errorf("pair 2 = %+v", results[1])
	}
}

func TestPairsFromFastaOdd(t *testing.T) {
	if _, err := PairsFromFasta([]FastaRecord{{Name: "solo", Seq: "A"}}); err == nil {
		t.Error("odd record count accepted")
	}
}

func TestLoadFastaMissing(t *testing.T) {
	if _, err := LoadFasta("/nonexistent/file.fa", 0); err == nil {
		t.Error("missing file accepted")
	}
}
