package bpmax

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	ibpmax "github.com/bpmax-go/bpmax/internal/bpmax"
)

// TestWithPoolFoldParity folds the same pairs repeatedly through one pool
// and checks score and structure stay identical to fresh folds — including
// on the later rounds that run entirely on recycled state.
func TestWithPoolFoldParity(t *testing.T) {
	pool := NewPool()
	rng := rand.New(rand.NewSource(11))
	type pair struct{ s1, s2 string }
	var pairs []pair
	for i := 0; i < 4; i++ {
		pairs = append(pairs, pair{randSeq(rng, 8+rng.Intn(6)), randSeq(rng, 8+rng.Intn(6))})
	}
	for round := 0; round < 3; round++ {
		for i, pr := range pairs {
			want, err := Fold(pr.s1, pr.s2)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Fold(pr.s1, pr.s2, WithPool(pool))
			if err != nil {
				t.Fatalf("round %d pair %d: %v", round, i, err)
			}
			if got.Score != want.Score {
				t.Fatalf("round %d pair %d: pooled score %v, fresh %v", round, i, got.Score, want.Score)
			}
			gs, ws := got.Structure(), want.Structure()
			if gs.Bracket1 != ws.Bracket1 || gs.Bracket2 != ws.Bracket2 {
				t.Fatalf("round %d pair %d: pooled structure %q/%q, fresh %q/%q",
					round, i, gs.Bracket1, gs.Bracket2, ws.Bracket1, ws.Bracket2)
			}
			got.Release()
		}
	}
}

// TestPooledFoldErrorMessages checks the pooled path reports sequence
// errors with exactly the same text as the unpooled path.
func TestPooledFoldErrorMessages(t *testing.T) {
	pool := NewPool()
	cases := [][2]string{
		{"GGX", "CCC"},
		{"GGG", "CCX"},
		{"", "CCC"},
		{"GGG", ""},
	}
	for _, c := range cases {
		_, wantErr := Fold(c[0], c[1])
		_, gotErr := Fold(c[0], c[1], WithPool(pool))
		if wantErr == nil || gotErr == nil {
			t.Fatalf("%q x %q: expected both paths to fail (fresh=%v pooled=%v)", c[0], c[1], wantErr, gotErr)
		}
		if gotErr.Error() != wantErr.Error() {
			t.Errorf("%q x %q:\n  pooled:  %v\n  fresh:   %v", c[0], c[1], gotErr, wantErr)
		}
	}
}

// TestReleaseSafety: Release must be safe on nil results, on unpooled
// results, and when called twice.
func TestReleaseSafety(t *testing.T) {
	var nilRes *Result
	nilRes.Release()
	var nilWin *WindowResult
	nilWin.Release()

	res, err := Fold("GGGAAA", "UUUCCC")
	if err != nil {
		t.Fatal(err)
	}
	res.Release() // unpooled: no-op recycle, must not panic
	res.Release() // idempotent

	pool := NewPool()
	res, err = Fold("GGGAAA", "UUUCCC", WithPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	res.Release()
	res.Release()
	if pool.RetainedBytes() <= 0 {
		t.Error("pooled release retained nothing")
	}
}

// TestPooledMemoryBudget checks WithMemoryLimit accounts pooled buffers
// without double-billing: a fold whose table fits an idle retained buffer
// is charged the retention, not retention plus a second table.
func TestPooledMemoryBudget(t *testing.T) {
	const n = 16
	seq1, seq2 := randSeq(rand.New(rand.NewSource(3)), n), randSeq(rand.New(rand.NewSource(4)), n)

	// A fresh pool is charged exactly the class-rounded table.
	pool := NewPool()
	limit := ibpmax.EstimatePooledBytes(n, n, ibpmax.MapBox)
	res, err := Fold(seq1, seq2, WithPool(pool), WithMemoryLimit(limit))
	if err != nil {
		t.Fatalf("fold at exact pooled budget: %v", err)
	}
	if res.Degradation != DegradeNone {
		t.Fatalf("degradation = %v at exact budget", res.Degradation)
	}
	res.Release()

	// Reuse: the retained buffer serves the same shape, so the same limit
	// still admits the fold (retention + 0 new bytes).
	res, err = Fold(seq1, seq2, WithPool(pool), WithMemoryLimit(limit))
	if err != nil {
		t.Fatalf("pooled refold double-billed the budget: %v", err)
	}
	res.Release()

	// An impossible limit still fails with the typed error.
	var mle *MemoryLimitError
	if _, err := Fold(seq1, seq2, WithPool(NewPool()), WithMemoryLimit(64)); !errors.As(err, &mle) {
		t.Fatalf("tiny budget: err = %v, want *MemoryLimitError", err)
	}
}

// TestPooledDegradeToWindowed runs the full degradation ladder through a
// pool and checks the windowed rung matches the unpooled windowed result.
func TestPooledDegradeToWindowed(t *testing.T) {
	const w = 4
	seq1 := "GGGAAACCCGGGAAACCC"
	seq2 := "GGGUUUCCCGGGUUUCCC"
	limit := EstimateWindowedBytes(18, 18, w, w) * 2 // admits the band, not the full tables
	if full := EstimateBytes(18, 18, WithPackedMemory()); limit >= full {
		t.Fatalf("limit %d does not force degradation (packed is %d)", limit, full)
	}
	want, err := Fold(seq1, seq2, WithMemoryLimit(limit), WithDegradeToWindowed(w, w))
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool()
	for round := 0; round < 2; round++ {
		got, err := Fold(seq1, seq2, WithPool(pool), WithMemoryLimit(limit), WithDegradeToWindowed(w, w))
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got.Degradation != DegradeWindowed || got.Window == nil {
			t.Fatalf("round %d: degradation = %v", round, got.Degradation)
		}
		if got.Score != want.Score || got.Window.Best != want.Window.Best {
			t.Fatalf("round %d: pooled windowed score %v, fresh %v", round, got.Score, want.Score)
		}
		got.Release()
	}
}

// TestScanWindowedPooled checks the standalone windowed scan through a pool
// matches the fresh scan and recycles cleanly.
func TestScanWindowedPooled(t *testing.T) {
	pool := NewPool()
	seq1, seq2 := "GGGAAACCCUUU", "GGGUUUCCCAAA"
	want, err := ScanWindowed(seq1, seq2, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		got, err := ScanWindowed(seq1, seq2, 5, 5, WithPool(pool))
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got.Best != want.Best || got.I1 != want.I1 || got.J2 != want.J2 {
			t.Fatalf("round %d: pooled best %v@(%d..%d), fresh %v@(%d..%d)",
				round, got.Best, got.I1, got.J2, want.Best, want.I1, want.J2)
		}
		got.Release()
	}
	if pool.RetainedBytes() <= 0 {
		t.Error("windowed release retained nothing")
	}
	if pool.Trim() <= 0 || pool.RetainedBytes() != 0 {
		t.Error("trim did not clear the pool")
	}
}

// TestSteadyStateGoroutineCount folds 100 times through a shared engine
// and pool and checks the process goroutine count stays flat — no worker
// or helper leaks across folds.
func TestSteadyStateGoroutineCount(t *testing.T) {
	before := runtime.NumGoroutine()
	e := NewEngine(4)
	pool := NewPool()
	base := runtime.NumGoroutine()
	seq1, seq2 := "GGGGGAAAAA", "UUUUUCCCCC"
	for i := 0; i < 100; i++ {
		res, err := Fold(seq1, seq2, WithEngine(e), WithPool(pool), WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		res.Release()
	}
	if now := runtime.NumGoroutine(); now > base {
		t.Errorf("goroutines grew across folds: %d -> %d", base, now)
	}
	e.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("engine workers leaked: %d -> %d", before, now)
	}
}

// TestWithEngineFoldParity checks engine-backed folds are bit-identical to
// the default runtime across every public variant.
func TestWithEngineFoldParity(t *testing.T) {
	e := NewEngine(4)
	defer e.Close()
	rng := rand.New(rand.NewSource(13))
	s1, s2 := randSeq(rng, 11), randSeq(rng, 13)
	for _, v := range publicVariants {
		want, err := Fold(s1, s2, WithVariant(v))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Fold(s1, s2, WithVariant(v), WithEngine(e), WithWorkers(4))
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if got.Score != want.Score {
			t.Errorf("%s: engine score %v, fresh %v", v, got.Score, want.Score)
		}
	}
}

// TestPooledFoldAfterCancelAndPanic: a cancelled and a panicked pooled fold
// must not poison the pool for subsequent folds.
func TestPooledFoldAfterCancelAndPanic(t *testing.T) {
	pool := NewPool()
	seq1, seq2 := "GGGGGAAAAA", "UUUUUCCCCC"
	want, err := Fold(seq1, seq2)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FoldContext(ctx, seq1, seq2, WithPool(pool)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pooled fold: err = %v", err)
	}

	boom := withTriangleHook(func(i1, j1 int) {
		if i1 == 0 && j1 == 5 {
			panic("injected fault")
		}
	})
	var pe *PanicError
	if _, err := Fold(seq1, seq2, WithPool(pool), boom); !errors.As(err, &pe) {
		t.Fatalf("panicked pooled fold: err = %v, want *PanicError", err)
	}

	got, err := Fold(seq1, seq2, WithPool(pool))
	if err != nil {
		t.Fatalf("pooled fold after faults: %v", err)
	}
	if got.Score != want.Score {
		t.Errorf("score after faults %v, want %v", got.Score, want.Score)
	}
	got.Release()
}
