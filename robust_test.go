package bpmax

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// publicVariants enumerates every schedule reachable through the public
// API.
var publicVariants = []Variant{Base, Coarse, Fine, Hybrid, HybridTiled}

func TestFoldContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, v := range publicVariants {
		res, err := FoldContext(ctx, "GGGAAACCC", "GGGUUUCCC", WithVariant(v))
		if !errors.Is(err, context.Canceled) || res != nil {
			t.Errorf("%s: res=%v err=%v, want nil result and Canceled", v, res != nil, err)
		}
	}
}

func TestFoldContextNilContextWorks(t *testing.T) {
	res, err := FoldContext(nil, "GGG", "CCC") //lint:ignore SA1012 the nil guard is part of the contract
	if err != nil || res == nil {
		t.Fatalf("nil ctx: res=%v err=%v", res, err)
	}
	want, _ := Fold("GGG", "CCC")
	if res.Score != want.Score {
		t.Errorf("nil-ctx score %v, want %v", res.Score, want.Score)
	}
}

func TestFoldContextDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// Large enough that a full fill takes seconds; the 10 ms deadline must
	// interrupt it.
	rng := rand.New(rand.NewSource(7))
	s1, s2 := randSeq(rng, 64), randSeq(rng, 64)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	res, err := FoldContext(ctx, s1, s2)
	if !errors.Is(err, context.DeadlineExceeded) || res != nil {
		t.Fatalf("res=%v err=%v, want nil result and DeadlineExceeded", res != nil, err)
	}
}

func TestWithMemoryLimitRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s1, s2 := randSeq(rng, 24), randSeq(rng, 24)
	// Below even the packed layout: the fold must fail without degradation
	// enabled, reporting the smallest layout it considered.
	limit := EstimateBytes(24, 24, WithPackedMemory()) - 1
	res, err := Fold(s1, s2, WithMemoryLimit(limit))
	var mle *MemoryLimitError
	if !errors.As(err, &mle) || res != nil {
		t.Fatalf("res=%v err=%v, want nil result and *MemoryLimitError", res != nil, err)
	}
	if mle.LimitBytes != limit {
		t.Errorf("LimitBytes = %d, want %d", mle.LimitBytes, limit)
	}
	if want := EstimateBytes(24, 24, WithPackedMemory()); mle.EstimateBytes != want {
		t.Errorf("EstimateBytes = %d, want the packed footprint %d", mle.EstimateBytes, want)
	}
}

func TestWithMemoryLimitGenerousIsNoop(t *testing.T) {
	res, err := Fold("GGGAAACCC", "GGGUUUCCC", WithMemoryLimit(1<<40))
	if err != nil {
		t.Fatal(err)
	}
	if res.Degradation != DegradeNone {
		t.Errorf("degradation = %v, want none", res.Degradation)
	}
	want, _ := Fold("GGGAAACCC", "GGGUUUCCC")
	if res.Score != want.Score {
		t.Errorf("score %v, want %v", res.Score, want.Score)
	}
}

func TestDegradeToPackedKeepsScores(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s1, s2 := randSeq(rng, 24), randSeq(rng, 24)
	box := EstimateBytes(24, 24)
	packed := EstimateBytes(24, 24, WithPackedMemory())
	if packed >= box {
		t.Fatalf("packed %d not below box %d; test premise broken", packed, box)
	}
	res, err := Fold(s1, s2, WithMemoryLimit(packed))
	if err != nil {
		t.Fatal(err)
	}
	if res.Degradation != DegradePacked {
		t.Fatalf("degradation = %v, want packed", res.Degradation)
	}
	if res.TableBytes > packed {
		t.Errorf("allocated %d bytes over the %d limit", res.TableBytes, packed)
	}
	// The packed map is exact: same optimum, same sub-scores.
	want, err := Fold(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != want.Score {
		t.Errorf("packed score %v, full score %v", res.Score, want.Score)
	}
	if a, b := res.SubScore(2, 20, 3, 19), want.SubScore(2, 20, 3, 19); a != b {
		t.Errorf("packed SubScore %v, full %v", a, b)
	}
}

func TestDegradeToWindowed(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s1, s2 := randSeq(rng, 24), randSeq(rng, 24)
	const w = 6
	packed := EstimateBytes(24, 24, WithPackedMemory())
	banded := EstimateWindowedBytes(24, 24, w, w)
	if banded >= packed {
		t.Fatalf("banded %d not below packed %d; test premise broken", banded, packed)
	}
	res, err := Fold(s1, s2, WithMemoryLimit(banded), WithDegradeToWindowed(w, w))
	if err != nil {
		t.Fatal(err)
	}
	if res.Degradation != DegradeWindowed || res.Window == nil {
		t.Fatalf("degradation = %v (window %v), want windowed", res.Degradation, res.Window != nil)
	}
	// The degraded fold must agree with a direct windowed scan.
	scan, err := ScanWindowed(s1, s2, w, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != scan.Best || res.Window.Best != scan.Best {
		t.Errorf("degraded score %v / window best %v, direct scan %v", res.Score, res.Window.Best, scan.Best)
	}
	if res.FLOPs != 0 {
		t.Errorf("FLOPs = %d on a windowed fallback, want 0", res.FLOPs)
	}
	// Accessors stay functional on the degraded result.
	if got, _, _, _, _ := res.BestLocal(w, w); got != scan.Best {
		t.Errorf("BestLocal = %v, want %v", got, scan.Best)
	}
	wr := res.Window
	if !wr.InWindow(wr.I1, wr.J1, wr.I2, wr.J2) {
		t.Error("best cell reported out of window")
	}
	if got := res.SubScore(wr.I1, wr.J1, wr.I2, wr.J2); got != scan.Best {
		t.Errorf("SubScore at best cell = %v, want %v", got, scan.Best)
	}
	st := res.Structure()
	if len(st.Bracket1) != res.N1 || len(st.Bracket2) != res.N2 {
		t.Errorf("bracket lengths %d/%d for %d/%d nt", len(st.Bracket1), len(st.Bracket2), res.N1, res.N2)
	}
}

func TestDegradeLadderExhausted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s1, s2 := randSeq(rng, 24), randSeq(rng, 24)
	const w = 6
	banded := EstimateWindowedBytes(24, 24, w, w)
	res, err := Fold(s1, s2, WithMemoryLimit(banded-1), WithDegradeToWindowed(w, w))
	var mle *MemoryLimitError
	if !errors.As(err, &mle) || res != nil {
		t.Fatalf("res=%v err=%v, want nil result and *MemoryLimitError", res != nil, err)
	}
	// With every rung over budget the error reports the cheapest one — the
	// windowed band.
	if mle.EstimateBytes != banded {
		t.Errorf("EstimateBytes = %d, want the banded footprint %d", mle.EstimateBytes, banded)
	}
}

func TestDegradationString(t *testing.T) {
	for d, want := range map[Degradation]string{
		DegradeNone:     "none",
		DegradePacked:   "packed",
		DegradeWindowed: "windowed",
		Degradation(42): "Degradation(42)",
	} {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(d), got, want)
		}
	}
}

func TestFoldSingleContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := FoldSingleContext(ctx, "GGGAAACCC")
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Errorf("res=%v err=%v, want nil result and Canceled", res != nil, err)
	}
	// Background path unchanged.
	got, err := FoldSingleContext(context.Background(), "GGGAAACCC")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FoldSingle("GGGAAACCC")
	if got.Score != want.Score {
		t.Errorf("score %v, want %v", got.Score, want.Score)
	}
}

func TestScanWindowedContextCancelAndBudget(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ScanWindowedContext(ctx, "GGGAAACCC", "GGGUUUCCC", 4, 4)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Errorf("res=%v err=%v, want nil result and Canceled", res != nil, err)
	}
	// An over-budget band is rejected up front with the typed error.
	est := EstimateWindowedBytes(9, 9, 4, 4)
	var mle *MemoryLimitError
	_, err = ScanWindowed("GGGAAACCC", "GGGUUUCCC", 4, 4, WithMemoryLimit(est-1))
	if !errors.As(err, &mle) {
		t.Fatalf("err = %v, want *MemoryLimitError", err)
	}
	if mle.EstimateBytes != est || mle.LimitBytes != est-1 {
		t.Errorf("error fields %d/%d, want %d/%d", mle.EstimateBytes, mle.LimitBytes, est, est-1)
	}
	// At the limit it runs.
	if _, err := ScanWindowed("GGGAAACCC", "GGGUUUCCC", 4, 4, WithMemoryLimit(est)); err != nil {
		t.Errorf("scan at exactly the limit failed: %v", err)
	}
}

func TestScanWindowedElapsedPopulated(t *testing.T) {
	res, err := ScanWindowed("GGGAAACCCGGGAAACCC", "GGGUUUCCCGGGUUUCCC", 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0", res.Elapsed)
	}
}
