package bpmax

import (
	"context"
	"errors"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"
	"time"
)

const (
	pSeq1 = "GGGAAACCCUUUGGGAAACCC"
	pSeq2 = "GGGUUUCCCAAAGGGUUUCCC"
)

// --- Cache layer ---

// TestCachedFoldBitIdentical is the acceptance gate: a fold served from the
// result cache is bit-identical to the cold fold that filled it.
func TestCachedFoldBitIdentical(t *testing.T) {
	want, err := Fold(pSeq1, pSeq2)
	if err != nil {
		t.Fatalf("cold Fold: %v", err)
	}
	c := NewCache(CacheConfig{})
	cold, err := Fold(pSeq1, pSeq2, WithCache(c))
	if err != nil {
		t.Fatalf("cache-miss Fold: %v", err)
	}
	warm, err := Fold(pSeq1, pSeq2, WithCache(c))
	if err != nil {
		t.Fatalf("cache-hit Fold: %v", err)
	}
	for name, got := range map[string]*Result{"miss": cold, "hit": warm} {
		if got.Score != want.Score {
			t.Errorf("%s score = %v, want %v", name, got.Score, want.Score)
		}
		gs, ws := got.Structure(), want.Structure()
		if gs.Bracket1 != ws.Bracket1 || gs.Bracket2 != ws.Bracket2 || len(gs.Inter) != len(ws.Inter) {
			t.Errorf("%s structure = %q/%q (%d inter), want %q/%q (%d inter)",
				name, gs.Bracket1, gs.Bracket2, len(gs.Inter), ws.Bracket1, ws.Bracket2, len(ws.Inter))
		}
		if got.N1 != want.N1 || got.N2 != want.N2 || got.TableBytes != want.TableBytes {
			t.Errorf("%s shape = %d/%d/%d bytes, want %d/%d/%d", name, got.N1, got.N2, got.TableBytes, want.N1, want.N2, want.TableBytes)
		}
	}
	st := c.Stats()
	if st.ResultMisses != 1 || st.ResultHits != 1 {
		t.Errorf("result counters = %d misses, %d hits; want 1, 1", st.ResultMisses, st.ResultHits)
	}
	if st.SubstrateMisses != 2 {
		t.Errorf("substrate misses = %d, want 2 (one per strand)", st.SubstrateMisses)
	}
	if st.RetainedBytes <= 0 || st.Entries <= 0 {
		t.Errorf("retention = %d bytes, %d entries; want positive", st.RetainedBytes, st.Entries)
	}
	if c.RetainedBytes() != st.RetainedBytes {
		t.Errorf("RetainedBytes() = %d, Stats says %d", c.RetainedBytes(), st.RetainedBytes)
	}
}

// TestCachedFoldDistinguishesOptions: requests that differ in anything
// observable — weights, variant, hairpin constraint — must not share results.
func TestCachedFoldDistinguishesOptions(t *testing.T) {
	c := NewCache(CacheConfig{})
	base, err := Fold(pSeq1, pSeq2, WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	unit, err := Fold(pSeq1, pSeq2, WithCache(c), WithWeights(Weights{Unit: true}))
	if err != nil {
		t.Fatal(err)
	}
	wantUnit, err := Fold(pSeq1, pSeq2, WithWeights(Weights{Unit: true}))
	if err != nil {
		t.Fatal(err)
	}
	if unit.Score != wantUnit.Score {
		t.Errorf("unit-weight cached score = %v, want %v", unit.Score, wantUnit.Score)
	}
	if st := c.Stats(); st.ResultHits != 0 || st.ResultMisses != 2 {
		t.Errorf("counters = %d hits, %d misses; want 0 hits, 2 misses (different keys)", st.ResultHits, st.ResultMisses)
	}
	_ = base
}

// TestSubstrateCacheSharedAcrossPairs: the per-strand layer serves any fold
// that reuses a strand, independent of the partner.
func TestSubstrateCacheSharedAcrossPairs(t *testing.T) {
	c := NewCache(CacheConfig{DisableResults: true})
	want1, _ := Fold(pSeq1, pSeq2)
	want2, _ := Fold(pSeq1, "GGGCGCAAUACGC")
	got1, err := Fold(pSeq1, pSeq2, WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	got2, err := Fold(pSeq1, "GGGCGCAAUACGC", WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	if got1.Score != want1.Score || got2.Score != want2.Score {
		t.Errorf("scores = %v/%v, want %v/%v", got1.Score, got2.Score, want1.Score, want2.Score)
	}
	st := c.Stats()
	if st.SubstrateHits != 1 || st.SubstrateMisses != 3 {
		t.Errorf("substrate counters = %d hits, %d misses; want 1, 3 (strand 1 shared)", st.SubstrateHits, st.SubstrateMisses)
	}
	if st.ResultMisses != 0 && st.ResultHits != 0 {
		t.Errorf("result layer served with DisableResults: %+v", st)
	}
}

// TestCachedFoldReleaseSafety: releasing a cache-hit result (pooled or not)
// must not poison the retained master — later hits stay correct.
func TestCachedFoldReleaseSafety(t *testing.T) {
	want, _ := Fold(pSeq1, pSeq2)
	c := NewCache(CacheConfig{})
	pool := NewPool()
	for i := 0; i < 4; i++ {
		res, err := Fold(pSeq1, pSeq2, WithCache(c), WithPool(pool))
		if err != nil {
			t.Fatalf("fold %d: %v", i, err)
		}
		if res.Score != want.Score {
			t.Fatalf("fold %d score = %v, want %v (master poisoned by a Release?)", i, res.Score, want.Score)
		}
		s := res.Structure()
		if s.Bracket1 != want.Structure().Bracket1 {
			t.Fatalf("fold %d structure diverged after Release", i)
		}
		res.Release()
		res.Release() // idempotent
	}
	if st := c.Stats(); st.ResultHits != 3 || st.ResultMisses != 1 {
		t.Errorf("counters = %d hits, %d misses; want 3, 1", st.ResultHits, st.ResultMisses)
	}
}

// TestCachedFoldSingleFlight: concurrent identical requests produce exactly
// one solve; every caller gets the same (bit-identical) answer. Run with
// -race this also exercises the cache's synchronization.
func TestCachedFoldSingleFlight(t *testing.T) {
	want, _ := Fold(pSeq1, pSeq2)
	c := NewCache(CacheConfig{})
	const n = 8
	var wg sync.WaitGroup
	scores := make([]float32, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Fold(pSeq1, pSeq2, WithCache(c))
			if err != nil {
				errs[i] = err
				return
			}
			scores[i] = res.Score
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("fold %d: %v", i, errs[i])
		}
		if scores[i] != want.Score {
			t.Fatalf("fold %d score = %v, want %v", i, scores[i], want.Score)
		}
	}
	st := c.Stats()
	if st.ResultMisses != 1 {
		t.Errorf("result misses = %d, want 1 (one leader, one solve)", st.ResultMisses)
	}
	if st.ResultHits+st.SingleFlightShared != n-1 {
		t.Errorf("hits %d + shared %d = %d, want %d", st.ResultHits, st.SingleFlightShared,
			st.ResultHits+st.SingleFlightShared, n-1)
	}
}

// TestCacheEviction: a byte budget evicts least-recently-used entries and
// the stats say so.
func TestCacheEviction(t *testing.T) {
	// Measure one fold's retained cost, then budget for roughly one and a
	// half folds: three distinct pairs must evict.
	probe := NewCache(CacheConfig{})
	r0, err := Fold(pSeq1, pSeq2, WithCache(probe))
	if err != nil {
		t.Fatal(err)
	}
	budget := probe.RetainedBytes() * 3 / 2
	if budget <= 0 {
		t.Fatal("probe cache retained nothing; test premise broken")
	}
	c := NewCache(CacheConfig{MaxBytes: budget})
	pairs := [][2]string{
		{pSeq1, pSeq2},
		{"GGGCGCAAUACGCAUUACGC", "GCGUAUUGCGCGUAUUGCGC"},
		{"AAGGGGCCCCAAAAGGGGCC", "GGCCCCUUUUGGGGCCCCUU"},
	}
	for _, p := range pairs {
		if _, err := Fold(p[0], p[1], WithCache(c)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget (retained %d)", budget, st.RetainedBytes)
	}
	if st.RetainedBytes > budget {
		t.Fatalf("retained %d bytes over the %d budget", st.RetainedBytes, budget)
	}
	if st.RetainedHighWater < st.RetainedBytes {
		t.Fatalf("high-water %d below current retention %d", st.RetainedHighWater, st.RetainedBytes)
	}
	// Evicted entries simply refill; correctness is unaffected.
	again, err := Fold(pSeq1, pSeq2, WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	if again.Score != r0.Score {
		t.Fatalf("score after eviction churn = %v, want %v", again.Score, r0.Score)
	}
}

// TestCacheChargedAgainstMemoryLimit: the cache's retained bytes consume
// WithMemoryLimit headroom, pushing a fold that would otherwise fit its full
// table down the degradation ladder.
func TestCacheChargedAgainstMemoryLimit(t *testing.T) {
	c := NewCache(CacheConfig{DisableResults: true})
	if _, err := Fold(pSeq1, pSeq2, WithCache(c)); err != nil {
		t.Fatal(err)
	}
	retained := c.RetainedBytes()
	if retained <= 0 {
		t.Fatal("cache retained nothing; test premise broken")
	}
	base := EstimateBytes(len(pSeq1), len(pSeq2))
	limit := base + retained - 1
	// Without the cache the box layout fits the limit outright.
	plain, err := Fold(pSeq1, pSeq2, WithMemoryLimit(limit))
	if err != nil {
		t.Fatalf("uncached fold: %v", err)
	}
	if plain.Degradation != DegradeNone {
		t.Fatalf("uncached degradation = %v, want none", plain.Degradation)
	}
	// With the cache charged on top, the box charge exceeds the limit and
	// the fold degrades to the packed map (which still fits).
	charged, err := Fold(pSeq1, pSeq2, WithCache(c), WithMemoryLimit(limit))
	if err != nil {
		t.Fatalf("cached fold: %v", err)
	}
	if charged.Degradation != DegradePacked {
		t.Fatalf("cached degradation = %v, want packed (cache retention charged)", charged.Degradation)
	}
	if charged.Score != plain.Score {
		t.Fatalf("degraded score = %v, want %v", charged.Score, plain.Score)
	}
}

// TestInstrumentedFoldBypassesResultCache: WithMetrics folds must measure a
// real fill, so they never hit (or fill) the result layer; the substrate
// layer still serves them.
func TestInstrumentedFoldBypassesResultCache(t *testing.T) {
	c := NewCache(CacheConfig{})
	if _, err := Fold(pSeq1, pSeq2, WithCache(c)); err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	res, err := Fold(pSeq1, pSeq2, WithCache(c), WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.FillNanos <= 0 {
		t.Error("instrumented fold has no fill time; was it served from cache?")
	}
	st := c.Stats()
	if st.ResultHits != 0 {
		t.Errorf("result hits = %d, want 0 (instrumented folds bypass the result layer)", st.ResultHits)
	}
	if st.SubstrateHits != 2 {
		t.Errorf("substrate hits = %d, want 2 (substrate layer still serves)", st.SubstrateHits)
	}
	if got := m.Snapshot().Folds; got != 1 {
		t.Errorf("metrics folds = %d, want 1", got)
	}
}

// TestWindowedScanSubstrateCache: scans share the same per-strand entries as
// folds and stay bit-identical when served from them.
func TestWindowedScanSubstrateCache(t *testing.T) {
	want, err := ScanWindowed(pSeq1, pSeq2, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(CacheConfig{})
	cold, err := ScanWindowed(pSeq1, pSeq2, 6, 6, WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := ScanWindowed(pSeq1, pSeq2, 6, 6, WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]*WindowResult{"cold": cold, "warm": warm} {
		if got.Best != want.Best || got.I1 != want.I1 || got.J2 != want.J2 {
			t.Errorf("%s scan = %v @ (%d,%d)/(%d,%d), want %v @ (%d,%d)/(%d,%d)",
				name, got.Best, got.I1, got.J1, got.I2, got.J2, want.Best, want.I1, want.J1, want.I2, want.J2)
		}
	}
	if st := c.Stats(); st.SubstrateHits != 2 || st.SubstrateMisses != 2 {
		t.Errorf("substrate counters = %d hits, %d misses; want 2, 2", st.SubstrateHits, st.SubstrateMisses)
	}
}

// TestFoldSingleCached: single-strand folds use (and fill) the same
// substrate entries as interaction folds.
func TestFoldSingleCached(t *testing.T) {
	want, err := FoldSingle(pSeq1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(CacheConfig{})
	cold, err := FoldSingle(pSeq1, WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := FoldSingle(pSeq1, WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Score != want.Score || warm.Score != want.Score ||
		cold.Bracket != want.Bracket || warm.Bracket != want.Bracket {
		t.Errorf("cached single folds = %v %q / %v %q, want %v %q",
			cold.Score, cold.Bracket, warm.Score, warm.Bracket, want.Score, want.Bracket)
	}
	if st := c.Stats(); st.SubstrateHits != 1 || st.SubstrateMisses != 1 {
		t.Errorf("substrate counters = %d hits, %d misses; want 1, 1", st.SubstrateHits, st.SubstrateMisses)
	}
	// An interaction fold of the same strand now hits the entry it left.
	if _, err := Fold(pSeq1, pSeq2, WithCache(c)); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.SubstrateHits != 2 {
		t.Errorf("substrate hits after interaction fold = %d, want 2 (strand shared across entry points)", st.SubstrateHits)
	}
}

// TestSubstrateCacheZeroAllocSteadyState is the satellite acceptance gate:
// a pooled fold whose substrates hit the cache allocates no more than the
// pooled steady state without a cache (which is zero).
func TestSubstrateCacheZeroAllocSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting in -short")
	}
	// Same stabilization as TestMetricsZeroAllocSteadyState: settle the
	// heap and hold GC off so no mid-window sync.Pool refill is charged to
	// either variant.
	runtime.GC()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	run := func(extra ...Option) float64 {
		e := NewEngine(2)
		defer e.Close()
		opts := append([]Option{WithEngine(e), WithPool(NewPool()), WithWorkers(2)}, extra...)
		cycle := func() {
			res, err := Fold(pSeq1, pSeq2, opts...)
			if err != nil {
				t.Fatal(err)
			}
			res.Release()
		}
		cycle() // warm the pool (and the cache, when present)
		return testing.AllocsPerRun(50, cycle)
	}
	off := run()
	on := run(WithCache(NewCache(CacheConfig{DisableResults: true})))
	// One alloc of absolute slack: under -race an occasional stray
	// allocation (sync.Pool victim-cache refill, GC timing) lands inside
	// the measured window. Same policy as benchgate's zero-alloc gates.
	if on > off+1 {
		t.Errorf("substrate-cached allocs/op = %v, uncached = %v; a cache hit must not allocate", on, off)
	}
}

// --- Admission layer ---

// TestAdmissionFoldQueueFull: beyond the queue bound, folds are rejected
// immediately with the typed error.
func TestAdmissionFoldQueueFull(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1})
	if err := a.a.Acquire(context.Background()); err != nil { // occupy the slot
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		_, err := Fold(pSeq1, pSeq2, WithAdmission(a))
		queued <- err
	}()
	waitForQueue(t, a, 1)
	m := NewMetrics()
	_, err := Fold(pSeq1, pSeq2, WithAdmission(a), WithMetrics(m))
	var ae *AdmissionError
	if !errors.As(err, &ae) || !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Fold = %v, want *AdmissionError wrapping ErrQueueFull", err)
	}
	if got := m.Snapshot().Errors; got != 1 {
		t.Errorf("metrics errors = %d, want 1 (rejection recorded)", got)
	}
	a.a.Release()
	if err := <-queued; err != nil {
		t.Fatalf("queued fold: %v", err)
	}
	st := a.Stats()
	if st.Rejected != 1 || st.Admitted < 2 {
		t.Errorf("stats = %d rejected, %d admitted; want 1, >= 2", st.Rejected, st.Admitted)
	}
}

// TestAdmissionFoldDeadline: a fold whose context expires while queued fails
// fast with a typed error carrying the context cause.
func TestAdmissionFoldDeadline(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1})
	if err := a.a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer a.a.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := FoldContext(ctx, pSeq1, pSeq2, WithAdmission(a))
	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("FoldContext = %v, want *AdmissionError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cause = %v, want context.DeadlineExceeded", err)
	}
	if ae.Waited <= 0 {
		t.Errorf("Waited = %v, want positive", ae.Waited)
	}
	if st := a.Stats(); st.Expired != 1 {
		t.Errorf("expired = %d, want 1", st.Expired)
	}
}

// TestAdmissionGatesEveryEntryPoint: the same gate bounds folds, scans,
// single-strand folds and ensembles.
func TestAdmissionGatesEveryEntryPoint(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 2})
	opts := []Option{WithAdmission(a)}
	if _, err := Fold("GGGAAACCC", "GGGUUUCCC", opts...); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanWindowed("GGGAAACCC", "GGGUUUCCC", 4, 4, opts...); err != nil {
		t.Fatal(err)
	}
	if _, err := FoldSingle("GGGAAACCC", opts...); err != nil {
		t.Fatal(err)
	}
	if _, err := SingleEnsemble("GGGAAACCC", 1.0, opts...); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Admitted != 4 {
		t.Errorf("admitted = %d, want 4 (one per entry point)", st.Admitted)
	}
	if st.Running != 0 {
		t.Errorf("running = %d after completion, want 0 (slots returned)", st.Running)
	}
}

// TestAdmissionConcurrentFolds runs a contended workload through a narrow
// gate; with -race this exercises the gate's synchronization end to end.
func TestAdmissionConcurrentFolds(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 2})
	want, _ := Fold(pSeq1, pSeq2)
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := Fold(pSeq1, pSeq2, WithAdmission(a))
			if err != nil {
				t.Errorf("Fold: %v", err)
				return
			}
			if res.Score != want.Score {
				t.Errorf("score = %v, want %v", res.Score, want.Score)
			}
		}()
	}
	wg.Wait()
	st := a.Stats()
	if st.Admitted != n || st.Running != 0 || st.QueueDepth != 0 {
		t.Errorf("stats = %d admitted, %d running, %d queued; want %d, 0, 0", st.Admitted, st.Running, st.QueueDepth, n)
	}
}

// waitForQueue spins until the gate's queue reaches depth.
func waitForQueue(t *testing.T, a *Admission, depth int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().QueueDepth < depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached depth %d", depth)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// --- Session facade ---

func TestSessionFoldParity(t *testing.T) {
	want, _ := Fold(pSeq1, pSeq2)
	s, err := NewSession()
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		res, err := s.Fold(context.Background(), pSeq1, pSeq2)
		if err != nil {
			t.Fatalf("session fold %d: %v", i, err)
		}
		if res.Score != want.Score {
			t.Fatalf("session fold %d score = %v, want %v", i, res.Score, want.Score)
		}
		res.Release()
	}
	st := s.Stats()
	if st.Engine == nil || st.Pool == nil {
		t.Fatal("session stats missing the owned engine/pool sections")
	}
	if st.Cache != nil || st.Admission != nil || st.Metrics != nil {
		t.Error("session stats has sections for components it was not given")
	}
	if st.Pool.ResultHits == 0 {
		t.Error("pooled session folds recorded no shell reuse")
	}
}

func TestSessionWithComponents(t *testing.T) {
	c := NewCache(CacheConfig{})
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 2})
	m := NewMetrics()
	s, err := NewSession(WithCache(c), WithAdmission(a), WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		res, err := s.Fold(context.Background(), pSeq1, pSeq2)
		if err != nil {
			t.Fatal(err)
		}
		res.Release()
	}
	st := s.Stats()
	if st.Cache == nil || st.Admission == nil || st.Metrics == nil {
		t.Fatal("session stats missing configured component sections")
	}
	if st.Admission.Admitted != 3 {
		t.Errorf("admitted = %d, want 3", st.Admission.Admitted)
	}
	// Instrumented sessions bypass the result layer but share substrates.
	if st.Cache.SubstrateHits == 0 {
		t.Error("no substrate sharing across session folds")
	}
	if st.Metrics.Folds != 3 {
		t.Errorf("metrics folds = %d, want 3", st.Metrics.Folds)
	}
}

func TestSessionEntryPoints(t *testing.T) {
	s, err := NewSession(WithCache(NewCache(CacheConfig{})))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	wantScan, _ := ScanWindowed(pSeq1, pSeq2, 5, 5)
	scan, err := s.ScanWindowed(context.Background(), pSeq1, pSeq2, 5, 5)
	if err != nil || scan.Best != wantScan.Best {
		t.Errorf("session scan = %v, %v; want %v", scan.Best, err, wantScan.Best)
	}
	wantSingle, _ := FoldSingle(pSeq1)
	single, err := s.FoldSingle(context.Background(), pSeq1)
	if err != nil || single.Score != wantSingle.Score {
		t.Errorf("session single = %v, %v; want %v", single.Score, err, wantSingle.Score)
	}
	wantEns, _ := SingleEnsemble(pSeq1, 1.0)
	ens, err := s.SingleEnsemble(pSeq1, 1.0)
	if err != nil || ens.LogZ != wantEns.LogZ {
		t.Errorf("session ensemble = %v, %v; want %v", ens.LogZ, err, wantEns.LogZ)
	}
	items := []BatchItem{{Name: "a", Seq1: pSeq1, Seq2: pSeq2}, {Name: "b", Seq1: pSeq2, Seq2: pSeq1}}
	wantBatch := FoldBatch(items, 2)
	batch := s.FoldBatch(context.Background(), items, 2)
	for i := range batch {
		if batch[i].Err != nil {
			t.Fatalf("session batch item %d: %v", i, batch[i].Err)
		}
		if batch[i].Result.Score != wantBatch[i].Result.Score {
			t.Errorf("session batch item %d score = %v, want %v", i, batch[i].Result.Score, wantBatch[i].Result.Score)
		}
	}
}

func TestSessionUnknownVariant(t *testing.T) {
	if _, err := NewSession(WithVariant(Variant("bogus"))); err == nil {
		t.Fatal("NewSession accepted an unknown variant")
	}
}

func TestSessionCloseIdempotentAndBorrowedEngine(t *testing.T) {
	e := NewEngine(2)
	defer e.Close()
	s, err := NewSession(WithEngine(e))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	// The caller's engine survives the session.
	if _, err := Fold("GGGAAACCC", "GGGUUUCCC", WithEngine(e)); err != nil {
		t.Fatalf("engine unusable after session close: %v", err)
	}
}
