// Correlate: how much of the "thermodynamic" signal does the simplified
// BPMax score capture? The BPMax paper's premise (from
// Ebrahimpour-Boroojeny et al.) is that weighted base-pair maximization
// correlates strongly with the full partition-function model (Pearson
// 0.904 at -180°C, 0.836 at 37°C against piRNA). This example reproduces
// the experiment's shape with the in-repo ensemble substrate:
//
//   - exact signal: kT·logZ of the Boltzmann ensemble over a concatenated
//     sequence pair (the standard concatenation approximation of
//     hybridization), at a cold and a warm temperature, and
//   - BPMax's interaction score for the same pairs.
//
// It then reports Pearson and Spearman rank correlations: high in the
// cold, lower but substantial in the warm — the paper's pattern.
//
//	go run ./examples/correlate
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"strings"

	"github.com/bpmax-go/bpmax"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	const pairs = 80

	var scores, coldZ, warmZ []float64
	for i := 0; i < pairs; i++ {
		s1 := randomRNA(rng, 10+rng.Intn(8))
		s2 := randomRNA(rng, 10+rng.Intn(8))

		res, err := bpmax.Fold(s1, s2)
		if err != nil {
			log.Fatal(err)
		}
		scores = append(scores, float64(res.Score))

		// Concatenation approximation: fold s1+linker+s2 as one strand;
		// the ensemble over the joint strand tracks the interaction
		// ensemble (the linker of A's cannot pair with itself).
		joint := s1 + "AAA" + s2
		cold, err := bpmax.SingleEnsemble(joint, 0.05) // deep cold: ensemble ≈ optimum
		if err != nil {
			log.Fatal(err)
		}
		warm, err := bpmax.SingleEnsemble(joint, 1.5) // warm: many structures contribute
		if err != nil {
			log.Fatal(err)
		}
		coldZ = append(coldZ, 0.05*cold.LogZ)
		warmZ = append(warmZ, 1.5*warm.LogZ)
	}

	fmt.Printf("%d random sequence pairs\n\n", pairs)
	fmt.Printf("%-28s %9s %9s\n", "signal vs BPMax score", "Pearson", "Spearman")
	fmt.Printf("%-28s %9.3f %9.3f\n", "cold ensemble (kT=0.05)", pearson(scores, coldZ), spearman(scores, coldZ))
	fmt.Printf("%-28s %9.3f %9.3f\n", "warm ensemble (kT=1.5)", pearson(scores, warmZ), spearman(scores, warmZ))
	fmt.Println("\npaper's pattern: BPMax tracks the thermodynamic signal almost perfectly in the")
	fmt.Println("cold limit and remains strongly rank-correlated at physiological temperature.")
}

func randomRNA(rng *rand.Rand, n int) string {
	letters := []byte("ACGU")
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(letters[rng.Intn(4)])
	}
	return sb.String()
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

func spearman(x, y []float64) float64 {
	return pearson(ranks(x), ranks(y))
}

func ranks(x []float64) []float64 {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	r := make([]float64, len(x))
	for rank, i := range idx {
		r[i] = float64(rank)
	}
	return r
}
