// Distributed: what would the paper's future-work MPI port cost? This
// example runs the cluster-distribution simulation (bulk-synchronous
// wavefronts across virtual nodes) and reports, per node count and
// placement policy, the communication volume, load imbalance and
// critical-path speedup — the numbers that decide whether distributing
// BPMax is worthwhile before writing a line of MPI.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math/rand"

	ibpmax "github.com/bpmax-go/bpmax/internal/bpmax"
	"github.com/bpmax-go/bpmax/internal/cluster"
	"github.com/bpmax-go/bpmax/internal/rna"
	"github.com/bpmax-go/bpmax/internal/score"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	p, err := ibpmax.NewProblem(rna.Random(rng, 24), rna.Random(rng, 48), score.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BPMax %dx%d nt distributed over virtual nodes (bulk-synchronous wavefronts)\n\n", p.N1, p.N2)

	_, single := cluster.Solve(p, 1, cluster.Cyclic, ibpmax.Config{})
	fmt.Printf("%5s  %-8s %10s %10s %10s %10s %8s\n",
		"nodes", "place", "messages", "MB moved", "bytes/op", "imbalance", "speedup")
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		for _, place := range []cluster.Placement{cluster.Cyclic, cluster.Blocked} {
			if nodes == 1 && place == cluster.Blocked {
				continue
			}
			table, st := cluster.Solve(p, nodes, place, ibpmax.Config{})
			fmt.Printf("%5d  %-8s %10d %10.2f %10.4f %10.2f %7.2fx\n",
				nodes, place, st.Messages, float64(st.BytesMoved)/(1<<20),
				st.CommToCompute(), st.Imbalance(),
				float64(single.CriticalPathOps)/float64(st.CriticalPathOps))
			// The distributed result is bit-identical to the local one.
			if got := p.Score(table); got != p.Score(cluster.MustLocal(p)) {
				log.Fatalf("distributed score %v diverged", got)
			}
		}
	}
	fmt.Println("\nreading the table: cyclic placement balances wavefront work (imbalance → 1)")
	fmt.Println("while blocked placement trades balance for fewer messages; bytes/op stays")
	fmt.Println("small because each O(N2²)-byte triangle feeds O(d1·N2³) max-plus work —")
	fmt.Println("the computation-to-communication ratio that makes the MPI port viable.")
}
