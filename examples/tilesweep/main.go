// Tilesweep: auto-tune the double max-plus tile shape for this machine,
// the methodology behind the paper's Fig 18 ("cubic tiles perform poorly;
// we observe the best result when j2 is not tiled due to the streaming
// effect", with ~10% between the best and a generic shape).
//
//	go run ./examples/tilesweep
package main

import (
	"fmt"
	"time"

	"github.com/bpmax-go/bpmax"
)

func main() {
	// A fixed moderate workload: short outer strand, longer inner strand —
	// the 16×N shape of the paper's Fig 18.
	seq1 := repeatRNA("GGAC", 4)  // 16 nt
	seq2 := repeatRNA("GCAU", 48) // 192 nt

	type shape struct {
		name       string
		i2, k2, j2 int
	}
	shapes := []shape{
		{"8x8x8   (cubic)", 8, 8, 8},
		{"16x16x16 (cubic)", 16, 16, 16},
		{"32x4xN", 32, 4, 0},
		{"64x16xN (generic)", 64, 16, 0},
		{"128x8xN", 128, 8, 0},
		{"64x16x64", 64, 16, 64},
	}

	fmt.Printf("tuning BPMax hybrid-tiled on %dx%d nt\n\n", len(seq1), len(seq2))
	fmt.Printf("%-20s %12s %10s\n", "tile (i2 x k2 x j2)", "time", "GFLOPS")
	best := shape{}
	bestTime := time.Duration(1<<62 - 1)
	for _, sh := range shapes {
		res, err := bpmax.Fold(seq1, seq2,
			bpmax.WithTiles(sh.i2, sh.k2, sh.j2))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-20s %12v %10.2f\n", sh.name, res.Elapsed.Round(time.Microsecond), res.GFLOPS())
		if res.Elapsed < bestTime {
			bestTime, best = res.Elapsed, sh
		}
	}
	fmt.Printf("\nbest shape on this machine: %s\n", best.name)
	fmt.Println("expected pattern (paper Fig 18): cubic tiles lose; untiled j2 streams best.")
}

func repeatRNA(unit string, times int) string {
	out := ""
	for i := 0; i < times; i++ {
		out += unit
	}
	return out
}
