// Screening: rank candidate mRNA fragments by their predicted interaction
// with a small regulatory RNA — the workload class the paper's introduction
// motivates (sRNA target prediction), run two ways:
//
//  1. full BPMax folds of the sRNA against each fragment (exact), and
//
//  2. a windowed scan over one long transcript (memory-bounded, the
//     formulation the GPU comparator used).
//
//     go run ./examples/screening
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"github.com/bpmax-go/bpmax"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// The "sRNA": a short seed region embedded in random context.
	seed := "GGCAUCC"
	srna := randomRNA(rng, 6) + seed + randomRNA(rng, 6)

	// Candidate targets: random fragments, three of which carry the seed's
	// reverse complement (a strong binding site).
	rc := reverseComplement(seed)
	type target struct {
		name string
		seq  string
	}
	var targets []target
	for i := 0; i < 12; i++ {
		frag := randomRNA(rng, 40)
		name := fmt.Sprintf("frag%02d", i)
		if i%4 == 0 {
			pos := 8 + rng.Intn(20)
			frag = frag[:pos] + rc + frag[pos+len(rc):]
			name += "*" // planted site
		}
		targets = append(targets, target{name, frag})
	}

	fmt.Printf("sRNA (%d nt): %s\n\n== exact screen: full BPMax per fragment (FoldBatch) ==\n", len(srna), srna)
	var items []bpmax.BatchItem
	for _, tg := range targets {
		items = append(items, bpmax.BatchItem{Name: tg.name, Seq1: srna, Seq2: tg.seq})
	}
	ranked := bpmax.RankByGain(bpmax.FoldBatch(items, 0))
	if len(ranked) != len(items) {
		log.Fatalf("screen lost items: %d of %d succeeded", len(ranked), len(items))
	}
	fmt.Printf("%-8s %8s %8s\n", "target", "score", "gain")
	for _, h := range ranked {
		fmt.Printf("%-8s %8.1f %8.1f\n", h.Name, h.Result.Score, h.Gain)
	}
	fmt.Println("(gain = interaction score minus the strands' independent folds; '*' marks planted sites)")

	// Windowed scan across one long transcript containing a single site.
	transcript := randomRNA(rng, 150) + rc + randomRNA(rng, 150)
	w, err := bpmax.ScanWindowed(srna, transcript, len(srna)+2, 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== windowed scan over a %d nt transcript (window 24) ==\n", len(transcript))
	fmt.Printf("best local interaction %g at transcript[%d..%d] (site planted at %d..%d)\n",
		w.Best, w.I2, w.J2, 150, 150+len(rc)-1)
	fmt.Printf("banded table: %.2f MB (full table would need far more for long transcripts)\n",
		float64(w.TableBytes)/(1<<20))
}

func randomRNA(rng *rand.Rand, n int) string {
	letters := []byte("ACGU")
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(letters[rng.Intn(4)])
	}
	return sb.String()
}

func reverseComplement(s string) string {
	comp := map[byte]byte{'A': 'U', 'U': 'A', 'C': 'G', 'G': 'C'}
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		out[len(s)-1-i] = comp[s[i]]
	}
	return string(out)
}
