// Quickstart: fold two short RNAs against each other with BPMax and print
// the score, the optimal joint structure, and a few sub-interval queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/bpmax-go/bpmax"
)

func main() {
	// A hairpin-forming strand and a partially complementary partner.
	seq1 := "GGGAGACUCCCAAAA"
	seq2 := "UUUUGGGAGUCUCCC"

	res, err := bpmax.Fold(seq1, seq2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("BPMax interaction score: %g\n\n", res.Score)

	st := res.Structure()
	fmt.Println("one optimal joint structure ('()' intramolecular, '[' bonded to the other strand):")
	fmt.Printf("  5'-%s-3'   (%d nt)\n", seq1, res.N1)
	fmt.Printf("     %s\n", st.Bracket1)
	fmt.Printf("  5'-%s-3'   (%d nt)\n", seq2, res.N2)
	fmt.Printf("     %s\n", st.Bracket2)
	fmt.Printf("\npairs: %d in seq1, %d in seq2, %d intermolecular\n\n",
		len(st.Intra1), len(st.Intra2), len(st.Inter))

	// Every sub-interval interaction is available from the same fill.
	fmt.Println("sub-interval scores F[i1..j1, i2..j2]:")
	for _, q := range [][4]int{{0, 7, 0, 7}, {0, 7, 8, 14}, {8, 14, 0, 7}} {
		fmt.Printf("  seq1[%2d..%2d] x seq2[%2d..%2d] -> %g\n",
			q[0], q[1], q[2], q[3], res.SubScore(q[0], q[1], q[2], q[3]))
	}

	// Each strand's single-strand optimum, for comparison: interaction can
	// only improve on folding alone.
	single1, _ := bpmax.FoldSingle(seq1)
	single2, _ := bpmax.FoldSingle(seq2)
	fmt.Printf("\nfolding alone: seq1 = %g (%s), seq2 = %g (%s)\n",
		single1.Score, single1.Bracket, single2.Score, single2.Bracket)
	fmt.Printf("interaction gain: %g\n", res.Score-single1.Score-single2.Score)
}
