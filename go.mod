module github.com/bpmax-go/bpmax

go 1.22
