package bpmax

import (
	"context"
	"strings"
	"testing"

	"github.com/bpmax-go/bpmax/internal/seqio"
)

// FuzzFold checks that Fold either rejects its input with an error or
// returns an internally consistent result (non-negative score, valid
// traceback whose weight matches), for arbitrary byte strings.
func FuzzFold(f *testing.F) {
	f.Add("GGG", "CCC")
	f.Add("acgu", "ACGT")
	f.Add("", "A")
	f.Add("GGGAAACCC", "GGGUUUCCC")
	f.Add("AXB", "CCC")
	f.Fuzz(func(t *testing.T, s1, s2 string) {
		if len(s1) > 16 || len(s2) > 16 {
			t.Skip("keep the O(N3M3) fill small")
		}
		res, err := Fold(s1, s2)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if res.Score < 0 {
			t.Fatalf("negative score %v for %q x %q", res.Score, s1, s2)
		}
		st := res.Structure()
		if len(st.Bracket1) != res.N1 || len(st.Bracket2) != res.N2 {
			t.Fatalf("bracket lengths %d/%d for %d/%d nt", len(st.Bracket1), len(st.Bracket2), res.N1, res.N2)
		}
		if len(st.Inter) > min(res.N1, res.N2) {
			t.Fatalf("more intermolecular bonds (%d) than the shorter strand", len(st.Inter))
		}
	})
}

// FuzzFoldContextParity checks that the context-aware path with a
// background context is bit-identical to plain Fold for every schedule:
// same acceptance, same score, same traceback.
func FuzzFoldContextParity(f *testing.F) {
	f.Add("GGG", "CCC")
	f.Add("GGGAAACCC", "GGGUUUCCC")
	f.Add("acgu", "ugca")
	f.Add("A", "")
	f.Fuzz(func(t *testing.T, s1, s2 string) {
		if len(s1) > 12 || len(s2) > 12 {
			t.Skip("keep the O(N3M3) fill small")
		}
		want, wantErr := Fold(s1, s2)
		for _, v := range publicVariants {
			got, err := FoldContext(context.Background(), s1, s2, WithVariant(v))
			if (err != nil) != (wantErr != nil) {
				t.Fatalf("%s: err = %v, Fold err = %v", v, err, wantErr)
			}
			if err != nil {
				continue
			}
			if got.Score != want.Score {
				t.Fatalf("%s: score %v, Fold score %v", v, got.Score, want.Score)
			}
			gs, ws := got.Structure(), want.Structure()
			if gs.Bracket1 != ws.Bracket1 || gs.Bracket2 != ws.Bracket2 {
				t.Fatalf("%s: structure %q/%q, Fold %q/%q", v, gs.Bracket1, gs.Bracket2, ws.Bracket1, ws.Bracket2)
			}
		}
	})
}

// FuzzPooledParity checks that folding through a shared pool and engine is
// bit-identical to a fresh fold for every schedule and arbitrary inputs —
// same acceptance, same error text, same score, same structure — including
// when a cancelled fold touched the pool immediately before.
func FuzzPooledParity(f *testing.F) {
	pool := NewPool()
	engine := NewEngine(4)
	f.Cleanup(engine.Close)
	f.Add("GGG", "CCC")
	f.Add("GGGAAACCC", "GGGUUUCCC")
	f.Add("acgu", "ugca")
	f.Add("AXB", "")
	f.Fuzz(func(t *testing.T, s1, s2 string) {
		if len(s1) > 12 || len(s2) > 12 {
			t.Skip("keep the O(N3M3) fill small")
		}
		want, wantErr := Fold(s1, s2)
		// Leave a cancelled fold's half-used state in the pool first; the
		// real fold must be unaffected.
		cancelled, cancel := context.WithCancel(context.Background())
		cancel()
		_, _ = FoldContext(cancelled, s1, s2, WithPool(pool), WithEngine(engine))
		for _, v := range publicVariants {
			got, err := Fold(s1, s2, WithVariant(v), WithPool(pool), WithEngine(engine), WithWorkers(4))
			if (err != nil) != (wantErr != nil) {
				t.Fatalf("%s: err = %v, Fold err = %v", v, err, wantErr)
			}
			if err != nil {
				if err.Error() != wantErr.Error() {
					t.Fatalf("%s: pooled error %q, fresh %q", v, err, wantErr)
				}
				continue
			}
			if got.Score != want.Score {
				t.Fatalf("%s: pooled score %v, fresh %v", v, got.Score, want.Score)
			}
			gs, ws := got.Structure(), want.Structure()
			if gs.Bracket1 != ws.Bracket1 || gs.Bracket2 != ws.Bracket2 {
				t.Fatalf("%s: pooled structure %q/%q, fresh %q/%q", v, gs.Bracket1, gs.Bracket2, ws.Bracket1, ws.Bracket2)
			}
			got.Release()
		}
	})
}

// FuzzCachedFoldParity checks that a fold served through the cache — the
// substrate layer, the result layer, and a warm hit of each — is
// bit-identical to a fresh fold for arbitrary inputs: same acceptance, same
// error text, same score, same structure.
func FuzzCachedFoldParity(f *testing.F) {
	f.Add("GGG", "CCC")
	f.Add("GGGAAACCC", "GGGUUUCCC")
	f.Add("acgu", "ugca")
	f.Add("AXB", "")
	f.Fuzz(func(t *testing.T, s1, s2 string) {
		if len(s1) > 12 || len(s2) > 12 {
			t.Skip("keep the O(N3M3) fill small")
		}
		want, wantErr := Fold(s1, s2)
		cache := NewCache(CacheConfig{})
		pool := NewPool()
		// Two passes: the first fills the cache (miss path), the second is
		// served from it (substrate shares + whole-result hit). Both must
		// match the cold fold exactly, pooled or not.
		for pass := 0; pass < 2; pass++ {
			for _, opts := range [][]Option{
				{WithCache(cache)},
				{WithCache(cache), WithPool(pool)},
			} {
				got, err := Fold(s1, s2, opts...)
				if (err != nil) != (wantErr != nil) {
					t.Fatalf("pass %d: err = %v, Fold err = %v", pass, err, wantErr)
				}
				if err != nil {
					if err.Error() != wantErr.Error() {
						t.Fatalf("pass %d: cached error %q, fresh %q", pass, err, wantErr)
					}
					continue
				}
				if got.Score != want.Score {
					t.Fatalf("pass %d: cached score %v, fresh %v", pass, got.Score, want.Score)
				}
				gs, ws := got.Structure(), want.Structure()
				if gs.Bracket1 != ws.Bracket1 || gs.Bracket2 != ws.Bracket2 {
					t.Fatalf("pass %d: cached structure %q/%q, fresh %q/%q", pass, gs.Bracket1, gs.Bracket2, ws.Bracket1, ws.Bracket2)
				}
				got.Release()
			}
		}
	})
}

// FuzzFastaRoundTrip checks the FASTA reader never panics and that
// whatever it accepts survives a write/read round trip.
func FuzzFastaRoundTrip(f *testing.F) {
	f.Add(">a\nACGU\n")
	f.Add(">x\r\nAC\r\nGU\r\n>y\n\n")
	f.Add("; comment\n>z\nacgt")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		recs, err := seqio.ReadString(text)
		if err != nil {
			return
		}
		out, err := seqio.WriteString(recs, 60)
		if err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := seqio.ReadString(out)
		if err != nil {
			t.Fatalf("round trip unreadable: %v\n%q", err, out)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip %d records, want %d", len(back), len(recs))
		}
		for i := range recs {
			// Names may lose leading/trailing spaces; sequences must not
			// change.
			if !back[i].Seq.Equal(recs[i].Seq) {
				t.Fatalf("record %d sequence changed", i)
			}
			if strings.TrimSpace(back[i].Name) != strings.TrimSpace(recs[i].Name) {
				t.Fatalf("record %d name changed: %q -> %q", i, recs[i].Name, back[i].Name)
			}
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
