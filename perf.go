// Performance layer: the shared execution engine and the fold-state pool
// that make steady-state folding allocation-free.
//
// A screening workload folds many pairs in a row; without help, every fold
// allocates a fresh Θ(N²M²) table and every wavefront forks and joins fresh
// goroutines, so throughput is set by the allocator, the garbage collector
// and barrier costs instead of by the DP kernels the paper optimized.
// NewEngine amortizes the goroutine cost across folds (one persistent
// worker team, the paper's OMP analogue) and NewPool recycles tables and
// solver state (explicitly re-initialized, so pooled results are
// bit-identical to fresh ones). FoldBatch uses both automatically; see
// docs/PERFORMANCE.md for the architecture and the benchmark methodology.

package bpmax

import (
	"sync"
	"sync/atomic"

	ibpmax "github.com/bpmax-go/bpmax/internal/bpmax"
)

// Engine is a persistent worker pool shared across folds and batch items.
// Without one, every wavefront of every fold spawns and joins its own
// goroutines; with one, workers park between wavefronts and the total
// parallel width is capped at the engine's size no matter how many folds
// share it. Create one per process (or per service), pass it to folds with
// WithEngine, and Close it when done.
//
// An Engine is safe for concurrent use by any number of folds. A panic
// inside one fold is contained to that fold's call; the workers survive.
type Engine struct {
	e *ibpmax.Engine
}

// NewEngine starts a persistent worker team of the given total width
// (<= 0 means GOMAXPROCS). The goroutines are spawned once here and live
// until Close.
func NewEngine(workers int) *Engine {
	return &Engine{e: ibpmax.NewEngine(workers)}
}

// Workers returns the engine's total parallel width.
func (e *Engine) Workers() int { return e.e.Workers() }

// Close releases the engine's worker goroutines. Close must not be called
// while folds using the engine are in flight; folds started after Close
// fall back to per-fold goroutines and remain correct.
func (e *Engine) Close() { e.e.Close() }

// WithEngine runs the fold's parallel loops on e's persistent workers
// instead of forking goroutines per wavefront. A nil engine leaves the
// default runtime in place.
func WithEngine(e *Engine) Option {
	return func(o *options) {
		if e != nil {
			o.engine = e
			o.cfg.Engine = e.e
		}
	}
}

// Pool recycles fold state — DP tables, score and S-table substrates,
// sequence buffers, solver scratch and Result shells — so that repeated
// folds through it allocate O(1) once warm. Buffers are explicitly
// re-initialized on reuse: a pooled fold returns bit-identical results to a
// fresh one, including after a cancelled or panicked fold touched the pool.
//
// Callers release a fold's resources back with Result.Release (or
// WindowResult.Release) once its scores, tables and structure are no longer
// needed; a result that is never released simply keeps its buffers out of
// the pool until the GC takes them, which is safe but forfeits the reuse.
//
// A Pool is safe for concurrent use. Retained table storage is accounted
// exactly (RetainedBytes) and counted against WithMemoryLimit budgets.
type Pool struct {
	p       *ibpmax.Pool
	results sync.Pool // *Result
	windows sync.Pool // *WindowResult

	// Result and WindowResult shells share one hit/miss pair in Stats.
	resultHits, resultMisses atomic.Int64
}

// NewPool returns an empty fold-state pool.
func NewPool() *Pool {
	return &Pool{p: ibpmax.NewPool()}
}

// RetainedBytes returns the table bytes currently parked in the pool —
// idle storage waiting for reuse. Buffers inside live Results are not
// counted (they are the caller's until Release).
func (p *Pool) RetainedBytes() int64 { return p.p.RetainedBytes() }

// Trim releases all idle pooled storage to the garbage collector and
// returns how many bytes were freed. Use it after a burst of large folds
// when the service goes quiet.
func (p *Pool) Trim() int64 { return p.p.Trim() }

// WithPool recycles fold state through p. A nil pool leaves per-fold
// allocation in place.
func WithPool(p *Pool) Option {
	return func(o *options) {
		if p != nil {
			o.pool = p
			o.cfg.Pool = p.p
		}
	}
}

// getResult returns a Result shell, recycled when a pool is configured.
func (o options) getResult() *Result {
	if o.pool == nil {
		return &Result{}
	}
	r, _ := o.pool.results.Get().(*Result)
	if r == nil {
		o.pool.resultMisses.Add(1)
		r = &Result{}
	} else {
		o.pool.resultHits.Add(1)
	}
	r.pool = o.pool
	return r
}

// putResult hands an unused Result shell back (fold error paths: the shell
// was acquired before the solve so metrics could record into it in place).
func (o options) putResult(r *Result) {
	if o.pool == nil {
		return
	}
	*r = Result{}
	o.pool.results.Put(r)
}

// getWindowResult returns a WindowResult shell, recycled when a pool is
// configured.
func (o options) getWindowResult() *WindowResult {
	if o.pool == nil {
		return &WindowResult{}
	}
	w, _ := o.pool.windows.Get().(*WindowResult)
	if w == nil {
		o.pool.resultMisses.Add(1)
		w = &WindowResult{}
	} else {
		o.pool.resultHits.Add(1)
	}
	w.pool = o.pool
	return w
}

// putWindowResult is putResult for WindowResult shells.
func (o options) putWindowResult(w *WindowResult) {
	if o.pool == nil {
		return
	}
	*w = WindowResult{}
	o.pool.windows.Put(w)
}

// Release returns the result's pooled resources — the F table (or windowed
// band), the problem's substrate tables and the Result shell itself — to
// the pool the fold ran with. It is safe (and a no-op) on results from
// unpooled folds and is idempotent; the result, its SubScore/SingleScore
// accessors and any Structure derived from it must not be used after
// Release.
func (r *Result) Release() {
	if r == nil {
		return
	}
	pool := r.pool
	r.ft.Release()
	// Partition tables recycle through the pool's float64 arena; the
	// Boltzmann substrate (r.ps) is never pooled — possibly cache-shared —
	// and is left to the GC.
	r.ft64.Release()
	if r.Window != nil {
		r.Window.Release()
	}
	r.prob.Release()
	*r = Result{}
	if pool != nil {
		pool.results.Put(r)
	}
}

// Release returns the windowed scan's pooled resources to the pool it ran
// with. Safe and idempotent like Result.Release; the window result must not
// be used afterwards.
func (w *WindowResult) Release() {
	if w == nil {
		return
	}
	pool := w.pool
	w.wt.Release()
	w.prob.Release()
	*w = WindowResult{}
	if pool != nil {
		pool.windows.Put(w)
	}
}
