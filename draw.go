package bpmax

import (
	"fmt"
	"strings"
)

// Draw renders the joint structure as a multi-line ASCII diagram: the two
// strands on parallel lines with '|' rungs marking intermolecular bonds
// and each strand's dot-bracket layer above/below it.
//
//	   ((((([)))))[[[[
//	5'-GGGAGACUCCCAAAA-3'
//	         |    ||||
//	3'-CCCUCUGAGGGUUUU-5'   <- seq2 reversed for antiparallel display
//	   ))))) ([((([[[[        (layer indices follow the reversal)
//
// Sequence 2 is drawn reversed (3'->5') so that bonds between positions
// that increase together on both strands — the only geometry BPMax's
// non-crossing model allows — appear as parallel rungs.
func (st *Structure) Draw(seq1, seq2 string) string {
	n1, n2 := len(seq1), len(seq2)
	width := n1
	if n2 > width {
		width = n2
	}
	pad := func(s string, n int) string { return s + strings.Repeat(" ", n-len(s)) }

	// Layer 2's brackets and bases displayed reversed.
	rev := func(s string) string {
		b := []byte(s)
		for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
			b[i], b[j] = b[j], b[i]
		}
		return string(b)
	}
	mirror2 := func(pos int) int { return n2 - 1 - pos }

	// Rung line: '|' where a bond connects column c of strand 1 to column
	// c' of the reversed strand 2; when the columns differ, draw a '/'
	// halfway marker at each end column.
	rung := make([]byte, width)
	for i := range rung {
		rung[i] = ' '
	}
	for _, b := range st.Inter {
		c1 := b.I1
		c2 := mirror2(b.I2)
		if c1 == c2 {
			rung[c1] = '|'
			continue
		}
		rung[c1] = '\\'
		if rung[c2] == ' ' {
			rung[c2] = '/'
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "     %s\n", pad(st.Bracket1, width))
	fmt.Fprintf(&sb, "  5'-%s-3'  seq1\n", pad(seq1, width))
	fmt.Fprintf(&sb, "     %s\n", string(rung))
	fmt.Fprintf(&sb, "  3'-%s-5'  seq2 (reversed)\n", pad(rev(seq2), width))
	fmt.Fprintf(&sb, "     %s\n", pad(rev(st.Bracket2), width))
	return sb.String()
}
