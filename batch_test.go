package bpmax

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func randSeq(rng *rand.Rand, n int) string {
	letters := []byte("ACGU")
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(letters[rng.Intn(4)])
	}
	return sb.String()
}

func TestFoldBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var items []BatchItem
	for i := 0; i < 8; i++ {
		items = append(items, BatchItem{
			Name: string(rune('a' + i)),
			Seq1: randSeq(rng, 6+rng.Intn(6)),
			Seq2: randSeq(rng, 6+rng.Intn(6)),
		})
	}
	batch := FoldBatch(items, 3)
	if len(batch) != len(items) {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, r := range batch {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Name != items[i].Name {
			t.Errorf("item %d out of order: %q", i, r.Name)
		}
		want, err := Fold(items[i].Seq1, items[i].Seq2)
		if err != nil {
			t.Fatal(err)
		}
		if r.Result.Score != want.Score {
			t.Errorf("item %d: batch score %v, sequential %v", i, r.Result.Score, want.Score)
		}
		s1, _ := FoldSingle(items[i].Seq1)
		s2, _ := FoldSingle(items[i].Seq2)
		if r.Gain != want.Score-s1.Score-s2.Score {
			t.Errorf("item %d: gain %v", i, r.Gain)
		}
	}
}

func TestFoldBatchReportsPerItemErrors(t *testing.T) {
	items := []BatchItem{
		{Name: "good", Seq1: "GGG", Seq2: "CCC"},
		{Name: "bad", Seq1: "GGX", Seq2: "CCC"},
		{Name: "empty", Seq1: "", Seq2: "CCC"},
	}
	batch := FoldBatch(items, 2)
	if batch[0].Err != nil {
		t.Errorf("good item failed: %v", batch[0].Err)
	}
	if batch[1].Err == nil || !strings.Contains(batch[1].Err.Error(), "bad") {
		t.Errorf("bad item error = %v", batch[1].Err)
	}
	if batch[2].Err == nil {
		t.Error("empty item should fail")
	}
}

func TestFoldBatchEmptyAndWorkers(t *testing.T) {
	if got := FoldBatch(nil, 4); len(got) != 0 {
		t.Error("empty batch")
	}
	// More workers than items, zero workers: both fine.
	items := []BatchItem{{Name: "x", Seq1: "GG", Seq2: "CC"}}
	for _, w := range []int{0, 1, 100} {
		if got := FoldBatch(items, w); got[0].Err != nil {
			t.Errorf("workers=%d: %v", w, got[0].Err)
		}
	}
}

func TestRankByGain(t *testing.T) {
	items := []BatchItem{
		{Name: "noninteracting", Seq1: "AAAA", Seq2: "AAAA"}, // nothing pairs: gain 0
		{Name: "duplex", Seq1: "GGGG", Seq2: "CCCC"},         // strong interaction
		{Name: "broken", Seq1: "NN", Seq2: "CC"},             // error
	}
	ranked := RankByGain(FoldBatch(items, 2))
	if len(ranked) != 2 {
		t.Fatalf("ranked %d items, want 2 (error dropped)", len(ranked))
	}
	if ranked[0].Name != "duplex" {
		t.Errorf("top hit = %q, want duplex", ranked[0].Name)
	}
	if ranked[0].Gain <= ranked[1].Gain {
		t.Errorf("ranking not descending: %v then %v", ranked[0].Gain, ranked[1].Gain)
	}
}

// TestRankByGainStableTies: the sort is fully deterministic — equal Gain
// breaks by Name, and items equal in both keep their input order (stable
// sort), so repeated screens of the same batch always rank identically.
func TestRankByGainStableTies(t *testing.T) {
	mark := func(d Degradation) *Result { return &Result{Degradation: d} }
	results := []BatchResult{
		{Name: "same", Gain: 1, Result: mark(DegradeNone)},
		{Name: "beta", Gain: 1, Result: mark(DegradeNone)},
		{Name: "same", Gain: 1, Result: mark(DegradePacked)},
		{Name: "alpha", Gain: 1, Result: mark(DegradeNone)},
		{Name: "same", Gain: 1, Result: mark(DegradeWindowed)},
		{Name: "top", Gain: 2, Result: mark(DegradeNone)},
	}
	ranked := RankByGain(results)
	wantNames := []string{"top", "alpha", "beta", "same", "same", "same"}
	for i, w := range wantNames {
		if ranked[i].Name != w {
			t.Fatalf("rank %d = %q, want %q (order: %v)", i, ranked[i].Name, w, names(ranked))
		}
	}
	// The three fully tied "same" entries must keep input order.
	wantDeg := []Degradation{DegradeNone, DegradePacked, DegradeWindowed}
	for i, w := range wantDeg {
		if got := ranked[3+i].Result.Degradation; got != w {
			t.Fatalf("tied entry %d = %v, want %v (input order not preserved)", i, got, w)
		}
	}
}

func names(rs []BatchResult) []string {
	var out []string
	for _, r := range rs {
		out = append(out, r.Name)
	}
	return out
}

func TestFoldBatchContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := []BatchItem{
		{Name: "a", Seq1: "GGG", Seq2: "CCC"},
		{Name: "b", Seq1: "AAA", Seq2: "UUU"},
	}
	results := FoldBatchContext(ctx, items, 2)
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) || r.Result != nil {
			t.Errorf("item %d: result=%v err=%v, want nil result and Canceled", i, r.Result != nil, r.Err)
		}
		if !strings.Contains(r.Err.Error(), items[i].Name) {
			t.Errorf("item %d error %q does not name the item", i, r.Err)
		}
	}
	if got := RankByGain(results); len(got) != 0 {
		t.Errorf("cancelled items leaked into the ranking: %d", len(got))
	}
}

// withTriangleHook is a test-only option injecting a fault hook into every
// schedule's triangle loop.
func withTriangleHook(h func(i1, j1 int)) Option {
	return func(o *options) { o.cfg.SetTriangleHook(h) }
}

// TestBatchBudget pins the worker-budget split: batch concurrency times
// per-fold parallelism never exceeds the global budget.
func TestBatchBudget(t *testing.T) {
	cases := []struct {
		budget, items, conc, perFold int
	}{
		{8, 2, 2, 4},  // few big items: deep per-fold parallelism
		{8, 16, 8, 1}, // many items: one worker each
		{4, 4, 4, 1},  // exact fit
		{5, 2, 2, 2},  // non-divisible budget rounds down
		{1, 10, 1, 1}, // serial budget
		{3, 1, 1, 3},  // single item gets the whole budget
	}
	for _, c := range cases {
		conc, perFold := batchBudget(c.budget, c.items)
		if conc != c.conc || perFold != c.perFold {
			t.Errorf("batchBudget(%d, %d) = (%d, %d), want (%d, %d)",
				c.budget, c.items, conc, perFold, c.conc, c.perFold)
		}
		if conc*perFold > c.budget {
			t.Errorf("batchBudget(%d, %d): %d x %d oversubscribes the budget",
				c.budget, c.items, conc, perFold)
		}
	}
}

// TestFoldBatchGainFromSubstrateTables checks the gain statistic read from
// the fold's own S tables matches independent single-strand refolds — the
// two O(n³) refolds the old implementation paid per item.
func TestFoldBatchGainFromSubstrateTables(t *testing.T) {
	items := []BatchItem{
		{Name: "duplex", Seq1: "GGGGAAAA", Seq2: "UUUUCCCC"},
		{Name: "hairpinish", Seq1: "GGGAAACCC", Seq2: "AAAA"},
	}
	for _, r := range FoldBatch(items, 2) {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		var it BatchItem
		for _, cand := range items {
			if cand.Name == r.Name {
				it = cand
			}
		}
		s1, err := FoldSingle(it.Seq1)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := FoldSingle(it.Seq2)
		if err != nil {
			t.Fatal(err)
		}
		if want := r.Result.Score - s1.Score - s2.Score; r.Gain != want {
			t.Errorf("%s: gain %v, want %v", r.Name, r.Gain, want)
		}
	}
}

// TestFoldBatchSharedEngine runs a batch on a caller-supplied engine and
// checks the scores are unchanged — the budgeted runtime is bit-identical.
func TestFoldBatchSharedEngine(t *testing.T) {
	e := NewEngine(4)
	defer e.Close()
	rng := rand.New(rand.NewSource(7))
	var items []BatchItem
	for i := 0; i < 6; i++ {
		items = append(items, BatchItem{
			Name: string(rune('a' + i)),
			Seq1: randSeq(rng, 10+rng.Intn(6)),
			Seq2: randSeq(rng, 10+rng.Intn(6)),
		})
	}
	got := FoldBatch(items, 2, WithEngine(e))
	for i, r := range got {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		want, err := Fold(items[i].Seq1, items[i].Seq2)
		if err != nil {
			t.Fatal(err)
		}
		if r.Result.Score != want.Score || r.Gain != want.Score-want.SingleScore1(0, want.N1-1)-want.SingleScore2(0, want.N2-1) {
			t.Errorf("item %d: score %v gain %v, want score %v", i, r.Result.Score, r.Gain, want.Score)
		}
	}
	// The engine must survive the batch for subsequent folds.
	if _, err := Fold(items[0].Seq1, items[0].Seq2, WithEngine(e), WithWorkers(4)); err != nil {
		t.Fatalf("fold after batch: %v", err)
	}
}

// TestFoldBatchPanicFailsOneItem injects a panic deep inside one item's
// solver (only the 10-nt pair reaches triangle j1 == 9) and checks it is
// confined to that item as a *PanicError while the rest of the batch — and
// the shared worker team — survive.
func TestFoldBatchPanicFailsOneItem(t *testing.T) {
	hook := withTriangleHook(func(i1, j1 int) {
		if j1 == 9 {
			panic("poisoned item")
		}
	})
	items := []BatchItem{
		{Name: "boom", Seq1: "GGGGGAAAAA", Seq2: "UUUUUCCCCC"}, // 10 nt: hits j1 == 9
		{Name: "fine", Seq1: "GGG", Seq2: "CCC"},               // 3 nt: never does
	}
	results := FoldBatch(items, 2, hook)
	var pe *PanicError
	if !errors.As(results[0].Err, &pe) {
		t.Fatalf("boom item Err = %v, want *PanicError", results[0].Err)
	}
	if pe.Value != "poisoned item" || len(pe.Stack) == 0 {
		t.Errorf("panic value %v, stack %d bytes", pe.Value, len(pe.Stack))
	}
	if !strings.Contains(results[0].Err.Error(), "boom") {
		t.Errorf("error %q does not name the item", results[0].Err)
	}
	if results[0].Result != nil {
		t.Error("poisoned item returned a result")
	}
	if results[1].Err != nil {
		t.Errorf("healthy item failed: %v", results[1].Err)
	}
	if got := RankByGain(results); len(got) != 1 || got[0].Name != "fine" {
		t.Errorf("ranking = %v, want only the healthy item", got)
	}
}

func TestFoldBatchDegradationStatus(t *testing.T) {
	// One item over budget with windowed fallback enabled, one in budget.
	const w = 4
	items := []BatchItem{
		{Name: "big", Seq1: "GGGAAACCCGGGAAACCC", Seq2: "GGGUUUCCCGGGUUUCCC"},
		{Name: "small", Seq1: "GG", Seq2: "CC"},
	}
	// A limit that admits the small pair's full table and the big pair's
	// banded fallback, but neither full layout of the big pair.
	limit := EstimateWindowedBytes(18, 18, w, w)
	if packed := EstimateBytes(18, 18, WithPackedMemory()); limit >= packed {
		t.Fatalf("banded %d not below packed %d; test premise broken", limit, packed)
	}
	results := FoldBatch(items, 1, WithMemoryLimit(limit), WithDegradeToWindowed(w, w))
	if results[0].Err != nil {
		t.Fatalf("big item failed: %v", results[0].Err)
	}
	if results[0].Degradation != DegradeWindowed {
		t.Errorf("big item degradation = %v, want windowed", results[0].Degradation)
	}
	if results[1].Err != nil || results[1].Degradation != DegradeNone {
		t.Errorf("small item: err=%v degradation=%v", results[1].Err, results[1].Degradation)
	}
}

func TestFoldBatchOptionsApply(t *testing.T) {
	items := []BatchItem{{Name: "u", Seq1: "GGG", Seq2: "CCC"}}
	got := FoldBatch(items, 1, WithWeights(Weights{Unit: true}))
	if got[0].Err != nil {
		t.Fatal(got[0].Err)
	}
	if got[0].Result.Score != 3 {
		t.Errorf("unit-weight batch score = %v, want 3", got[0].Result.Score)
	}
}
