package bpmax

import (
	"math/rand"
	"strings"
	"testing"
)

func randSeq(rng *rand.Rand, n int) string {
	letters := []byte("ACGU")
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(letters[rng.Intn(4)])
	}
	return sb.String()
}

func TestFoldBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var items []BatchItem
	for i := 0; i < 8; i++ {
		items = append(items, BatchItem{
			Name: string(rune('a' + i)),
			Seq1: randSeq(rng, 6+rng.Intn(6)),
			Seq2: randSeq(rng, 6+rng.Intn(6)),
		})
	}
	batch := FoldBatch(items, 3)
	if len(batch) != len(items) {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, r := range batch {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Name != items[i].Name {
			t.Errorf("item %d out of order: %q", i, r.Name)
		}
		want, err := Fold(items[i].Seq1, items[i].Seq2)
		if err != nil {
			t.Fatal(err)
		}
		if r.Result.Score != want.Score {
			t.Errorf("item %d: batch score %v, sequential %v", i, r.Result.Score, want.Score)
		}
		s1, _ := FoldSingle(items[i].Seq1)
		s2, _ := FoldSingle(items[i].Seq2)
		if r.Gain != want.Score-s1.Score-s2.Score {
			t.Errorf("item %d: gain %v", i, r.Gain)
		}
	}
}

func TestFoldBatchReportsPerItemErrors(t *testing.T) {
	items := []BatchItem{
		{Name: "good", Seq1: "GGG", Seq2: "CCC"},
		{Name: "bad", Seq1: "GGX", Seq2: "CCC"},
		{Name: "empty", Seq1: "", Seq2: "CCC"},
	}
	batch := FoldBatch(items, 2)
	if batch[0].Err != nil {
		t.Errorf("good item failed: %v", batch[0].Err)
	}
	if batch[1].Err == nil || !strings.Contains(batch[1].Err.Error(), "bad") {
		t.Errorf("bad item error = %v", batch[1].Err)
	}
	if batch[2].Err == nil {
		t.Error("empty item should fail")
	}
}

func TestFoldBatchEmptyAndWorkers(t *testing.T) {
	if got := FoldBatch(nil, 4); len(got) != 0 {
		t.Error("empty batch")
	}
	// More workers than items, zero workers: both fine.
	items := []BatchItem{{Name: "x", Seq1: "GG", Seq2: "CC"}}
	for _, w := range []int{0, 1, 100} {
		if got := FoldBatch(items, w); got[0].Err != nil {
			t.Errorf("workers=%d: %v", w, got[0].Err)
		}
	}
}

func TestRankByGain(t *testing.T) {
	items := []BatchItem{
		{Name: "noninteracting", Seq1: "AAAA", Seq2: "AAAA"}, // nothing pairs: gain 0
		{Name: "duplex", Seq1: "GGGG", Seq2: "CCCC"},         // strong interaction
		{Name: "broken", Seq1: "NN", Seq2: "CC"},             // error
	}
	ranked := RankByGain(FoldBatch(items, 2))
	if len(ranked) != 2 {
		t.Fatalf("ranked %d items, want 2 (error dropped)", len(ranked))
	}
	if ranked[0].Name != "duplex" {
		t.Errorf("top hit = %q, want duplex", ranked[0].Name)
	}
	if ranked[0].Gain <= ranked[1].Gain {
		t.Errorf("ranking not descending: %v then %v", ranked[0].Gain, ranked[1].Gain)
	}
}

func TestFoldBatchOptionsApply(t *testing.T) {
	items := []BatchItem{{Name: "u", Seq1: "GGG", Seq2: "CCC"}}
	got := FoldBatch(items, 1, WithWeights(Weights{Unit: true}))
	if got[0].Err != nil {
		t.Fatal(got[0].Err)
	}
	if got[0].Result.Score != 3 {
		t.Errorf("unit-weight batch score = %v, want 3", got[0].Result.Score)
	}
}
