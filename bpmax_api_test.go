package bpmax

import (
	"math/rand"
	"strings"
	"testing"
)

func TestFoldQuick(t *testing.T) {
	res, err := Fold("GGG", "CCC")
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 9 {
		t.Errorf("GGG×CCC = %v, want 9", res.Score)
	}
	if res.N1 != 3 || res.N2 != 3 {
		t.Errorf("dims = %d, %d", res.N1, res.N2)
	}
	if res.FLOPs <= 0 || res.TableBytes <= 0 {
		t.Errorf("metadata: flops=%d bytes=%d", res.FLOPs, res.TableBytes)
	}
}

func TestFoldRejectsBadInput(t *testing.T) {
	if _, err := Fold("ACGX", "ACGU"); err == nil || !strings.Contains(err.Error(), "sequence 1") {
		t.Errorf("bad seq1 error = %v", err)
	}
	if _, err := Fold("ACGU", "NN"); err == nil || !strings.Contains(err.Error(), "sequence 2") {
		t.Errorf("bad seq2 error = %v", err)
	}
	if _, err := Fold("", "ACGU"); err == nil {
		t.Error("empty seq1 accepted")
	}
	if _, err := Fold("A", "C", WithVariant("warp-speed")); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestFoldVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	letters := []byte("ACGU")
	randSeq := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[rng.Intn(4)]
		}
		return string(b)
	}
	s1, s2 := randSeq(9), randSeq(8)
	var want float32
	for i, v := range []Variant{Base, Coarse, Fine, Hybrid, HybridTiled} {
		res, err := Fold(s1, s2, WithVariant(v), WithWorkers(2))
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if i == 0 {
			want = res.Score
		} else if res.Score != want {
			t.Errorf("%s score %v != base %v", v, res.Score, want)
		}
	}
}

func TestFoldOptionsCompose(t *testing.T) {
	res, err := Fold("GGAUCC", "GGAUCC",
		WithTiles(2, 2, 2), WithPackedMemory(), WithUnrolledKernel(), WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Fold("GGAUCC", "GGAUCC", WithVariant(Base))
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != ref.Score {
		t.Errorf("tuned fold %v != reference %v", res.Score, ref.Score)
	}
}

func TestFoldStructure(t *testing.T) {
	res, err := Fold("GGG", "CCC")
	if err != nil {
		t.Fatal(err)
	}
	st := res.Structure()
	if len(st.Inter) != 3 {
		t.Fatalf("inter bonds = %v", st.Inter)
	}
	if st.Bracket1 != "[[[" || st.Bracket2 != "[[[" {
		t.Errorf("brackets = %q %q", st.Bracket1, st.Bracket2)
	}
	if st2 := res.Structure(); st2 != st {
		t.Error("Structure should be cached")
	}
}

func TestStructureWeightEqualsScore(t *testing.T) {
	res, err := Fold("GGAUACGUCC", "GGCAUAUGCC")
	if err != nil {
		t.Fatal(err)
	}
	st := res.Structure()
	// Recompute the weight through the public model: GC=3, AU=2, GU=1.
	weight := func(a, b byte) float32 {
		switch {
		case a == 'G' && b == 'C', a == 'C' && b == 'G':
			return 3
		case a == 'A' && b == 'U', a == 'U' && b == 'A':
			return 2
		case a == 'G' && b == 'U', a == 'U' && b == 'G':
			return 1
		}
		return -1e30
	}
	s1, s2 := "GGAUACGUCC", "GGCAUAUGCC"
	var total float32
	for _, p := range st.Intra1 {
		total += weight(s1[p.I], s1[p.J])
	}
	for _, p := range st.Intra2 {
		total += weight(s2[p.I], s2[p.J])
	}
	for _, p := range st.Inter {
		total += weight(s1[p.I1], s2[p.I2])
	}
	if total != res.Score {
		t.Errorf("structure weight %v != score %v", total, res.Score)
	}
}

func TestSubScore(t *testing.T) {
	res, err := Fold("GGAUCC", "GGAUCC")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.SubScore(0, res.N1-1, 0, res.N2-1); got != res.Score {
		t.Errorf("full SubScore %v != Score %v", got, res.Score)
	}
	// Empty seq2 interval = single-strand optimum of seq1 interval.
	if got, want := res.SubScore(0, 5, 3, 2), res.SingleScore1(0, 5); got != want {
		t.Errorf("empty-seq2 SubScore = %v, want %v", got, want)
	}
	if got, want := res.SubScore(4, 3, 0, 5), res.SingleScore2(0, 5); got != want {
		t.Errorf("empty-seq1 SubScore = %v, want %v", got, want)
	}
	if got := res.SubScore(3, 2, 4, 3); got != 0 {
		t.Errorf("both-empty SubScore = %v", got)
	}
}

func TestWithWeights(t *testing.T) {
	// With unit weights GGG×CCC scores 3 pairs = 3.
	res, err := Fold("GGG", "CCC", WithWeights(Weights{Unit: true}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 3 {
		t.Errorf("unit GGG×CCC = %v, want 3", res.Score)
	}
	// Custom weights: GC=10 makes the duplex worth 30.
	res, err = Fold("GGG", "CCC", WithWeights(Weights{GC: 10, AU: 2, GU: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 30 {
		t.Errorf("custom GGG×CCC = %v, want 30", res.Score)
	}
}

func TestWithMinHairpin(t *testing.T) {
	// GC can pair internally at distance 1 with MinHairpin 0 but not with
	// MinHairpin 3; intermolecular pairing is unaffected.
	res0, err := FoldSingle("GC")
	if err != nil {
		t.Fatal(err)
	}
	if res0.Score != 3 {
		t.Errorf("GC single = %v, want 3", res0.Score)
	}
	res3, err := FoldSingle("GC", WithMinHairpin(3))
	if err != nil {
		t.Fatal(err)
	}
	if res3.Score != 0 {
		t.Errorf("GC single with MinHairpin=3 = %v, want 0", res3.Score)
	}
}

func TestFoldSingle(t *testing.T) {
	res, err := FoldSingle("GGGAAACCC")
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 9 { // three nested GC pairs
		t.Errorf("hairpin score = %v, want 9", res.Score)
	}
	if res.Bracket != "(((...)))" {
		t.Errorf("bracket = %q", res.Bracket)
	}
	if len(res.Pairs) != 3 {
		t.Errorf("pairs = %v", res.Pairs)
	}
}

func TestFoldSingleEmpty(t *testing.T) {
	res, err := FoldSingle("")
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 0 || res.N != 0 || res.Bracket != "" {
		t.Errorf("empty fold = %+v", res)
	}
}

func TestScanWindowed(t *testing.T) {
	full, err := Fold("GGGAAACCC", "GGGUUUCCC")
	if err != nil {
		t.Fatal(err)
	}
	// A window wider than both sequences must reproduce the global score.
	w, err := ScanWindowed("GGGAAACCC", "GGGUUUCCC", 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if w.Best < full.Score {
		t.Errorf("wide-window best %v < full score %v", w.Best, full.Score)
	}
	if !w.InWindow(w.I1, w.J1, w.I2, w.J2) {
		t.Error("best cell reported out of window")
	}
	if got := w.At(w.I1, w.J1, w.I2, w.J2); got != w.Best {
		t.Errorf("At(best cell) = %v, want %v", got, w.Best)
	}
	// Narrow windows bound memory.
	narrow, err := ScanWindowed("GGGAAACCC", "GGGUUUCCC", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.TableBytes >= w.TableBytes {
		t.Errorf("narrow window (%d B) should be smaller than wide (%d B)", narrow.TableBytes, w.TableBytes)
	}
	if narrow.Best > w.Best {
		t.Errorf("narrow best %v exceeds wide best %v", narrow.Best, w.Best)
	}
}

func TestScanWindowedRejectsBadInput(t *testing.T) {
	if _, err := ScanWindowed("AXC", "ACGU", 2, 2); err == nil {
		t.Error("bad seq1 accepted")
	}
	if _, err := ScanWindowed("ACGU", "ACGX", 2, 2); err == nil {
		t.Error("bad seq2 accepted")
	}
	if _, err := ScanWindowed("ACGU", "ACGU", 0, 2); err == nil {
		t.Error("zero window accepted")
	}
}

func TestSingleEnsemble(t *testing.T) {
	ens, err := SingleEnsemble("GGGAAACCC", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if ens.Structures < 1 || ens.Cooptimal < 1 || ens.Cooptimal > ens.Structures {
		t.Errorf("ensemble = %+v", ens)
	}
	// The perfect hairpin has a unique optimum.
	if ens.Cooptimal != 1 {
		t.Errorf("GGGAAACCC cooptimal = %v, want 1", ens.Cooptimal)
	}
	// A homopolymer has exactly one (empty) structure.
	flat, err := SingleEnsemble("AAAA", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Structures != 1 || flat.Cooptimal != 1 || flat.LogZ != 0 {
		t.Errorf("AAAA ensemble = %+v", flat)
	}
	// Empty sequence and bad inputs.
	if e, err := SingleEnsemble("", 1.0); err != nil || e.Structures != 1 {
		t.Errorf("empty ensemble = %+v, %v", e, err)
	}
	if _, err := SingleEnsemble("GG", 0); err == nil {
		t.Error("kT=0 accepted")
	}
	if _, err := SingleEnsemble("NN", 1.0); err == nil {
		t.Error("bad letters accepted")
	}
}

func TestBestLocal(t *testing.T) {
	res, err := Fold("GGGAAACCC", "GGGUUUCCC")
	if err != nil {
		t.Fatal(err)
	}
	// Unrestricted scan returns the global optimum at the full intervals.
	v, i1, j1, i2, j2 := res.BestLocal(100, 100)
	if v != res.Score {
		t.Errorf("unrestricted BestLocal = %v, want %v", v, res.Score)
	}
	if i1 != 0 || j1 != res.N1-1 || i2 != 0 || j2 != res.N2-1 {
		t.Errorf("unrestricted argmax = (%d,%d,%d,%d)", i1, j1, i2, j2)
	}
	// Restricted scans are monotone in the span limits and bounded by the
	// global score.
	v3, a1, b1, a2, b2 := res.BestLocal(3, 3)
	if v3 > v {
		t.Errorf("restricted best %v exceeds global %v", v3, v)
	}
	if b1-a1 >= 3 || b2-a2 >= 3 {
		t.Errorf("restricted argmax (%d,%d,%d,%d) violates spans", a1, b1, a2, b2)
	}
	// Cross-check against the windowed scan at the same spans.
	w, err := ScanWindowed("GGGAAACCC", "GGGUUUCCC", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v3 != w.Best {
		t.Errorf("BestLocal(3,3) = %v, windowed scan = %v", v3, w.Best)
	}
}

func TestGFLOPSFinite(t *testing.T) {
	res, err := Fold("GGAUCCGGAUCC", "GGAUCCGGAUCC")
	if err != nil {
		t.Fatal(err)
	}
	if g := res.GFLOPS(); g < 0 {
		t.Errorf("GFLOPS = %v", g)
	}
}
