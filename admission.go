// Admission layer: the bounded-concurrency gate of the fold pipeline.
//
// A service that accepts folds faster than it can solve them needs
// backpressure before the solver, not after: N³M³ folds admitted without
// bound convoy on memory bandwidth and the scheduler until every request is
// slow. WithAdmission caps how many requests solve at once; the rest wait
// in arrival order (FIFO) and are woken as slots free up. The gate is
// deadline-aware — a queued request whose context expires fails immediately
// with a typed *AdmissionError instead of surfacing minutes later with work
// nobody wants — and a bounded queue sheds load beyond it with the same
// error type (errors.Is(err, ErrQueueFull)).
//
// Queue wait is observable three ways: AdmissionStats carries the
// cumulative totals and high-water marks, *AdmissionError.Waited the wait
// of one failed request, and a per-request trace in the context records
// every request's wait as its "queue" stage — the signal that lets a load
// harness say "p99 is dominated by queue wait" (see docs/OBSERVABILITY.md).

package bpmax

import (
	"github.com/bpmax-go/bpmax/internal/pipeline"
)

// AdmissionError is the error a fold returns when the admission gate never
// granted it a slot: the wait queue was full (Cause is ErrQueueFull) or the
// request's context ended while queued (Cause is ctx.Err(), so errors.Is
// with context.DeadlineExceeded / context.Canceled works). Match it with
// errors.As.
type AdmissionError = pipeline.AdmissionError

// ErrQueueFull is the AdmissionError cause for requests rejected because
// the bounded wait queue was already full.
var ErrQueueFull = pipeline.ErrQueueFull

// Admission is a bounded-concurrency admission gate shared by any number of
// entry points. Create one with NewAdmission, attach it with WithAdmission
// (or via a Session), and read utilization with Stats. All methods are safe
// for concurrent use; acquiring an uncontended slot allocates nothing.
type Admission struct {
	a *pipeline.Admission
}

// AdmissionConfig configures NewAdmission.
type AdmissionConfig struct {
	// MaxConcurrent is the number of requests allowed to solve at once
	// (values < 1 are clamped to 1).
	MaxConcurrent int
	// MaxQueue bounds the FIFO wait queue; requests arriving beyond it are
	// rejected immediately with ErrQueueFull. 0 means unbounded.
	MaxQueue int
}

// NewAdmission returns a gate with the given slot and queue bounds.
func NewAdmission(cfg AdmissionConfig) *Admission {
	return &Admission{a: pipeline.NewAdmission(cfg.MaxConcurrent, cfg.MaxQueue)}
}

// WithAdmission gates every request run with this option through a: at most
// MaxConcurrent solve concurrently, excess requests queue FIFO (respecting
// their contexts) or are rejected beyond MaxQueue. A nil gate leaves
// admission off.
func WithAdmission(a *Admission) Option {
	return func(o *options) { o.admission = a }
}

// Stats snapshots the gate's occupancy (running, queued), high-water marks
// (queue depth, single-request wait) and cumulative admitted / rejected /
// expired counters. Safe to call concurrently with running folds.
func (a *Admission) Stats() AdmissionStats { return a.a.Stats() }
